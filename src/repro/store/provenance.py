"""Provenance stamps for experiment/bench artifacts.

PR 3 discovered that bench artifacts committed at the seed were silently
stale for this environment — nothing recorded *which code* produced them,
so drift was invisible until someone re-ran the suite.  This module makes
artifacts self-describing: a ``"provenance"`` block recording

* ``code_version`` — a content hash over every ``.py`` file of the
  installed ``repro`` package (works without git, detects any source
  change);
* ``config_hash`` — a canonical hash of the artifact's own config block,
  so a hand-edited config no longer matches its stamp;
* ``seed`` and a :data:`~repro.perf.telemetry.COUNTERS` snapshot, so a
  rerun can be compared number-for-number;
* the payload schema version, tying the artifact to the serialization
  format it was written under.

:func:`repro.perf.telemetry.write_bench_json` stamps every artifact it
writes; ``python -m repro store verify --artifacts DIR`` re-derives the
hashes and flags tampered configs (error) and code drift (warning, error
under ``--strict``) without crashing on unstamped or non-JSON files.
"""

from __future__ import annotations

import hashlib
import json
import os
from functools import lru_cache
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.core.serialization import SCHEMA_VERSION as PAYLOAD_SCHEMA_VERSION
from repro.perf.telemetry import COUNTERS

__all__ = [
    "source_code_version",
    "config_hash",
    "file_sha256",
    "provenance_record",
    "stamp_payload",
    "verify_artifact",
    "verify_artifacts_dir",
]

PROVENANCE_FORMAT = "repro-provenance-v1"


@lru_cache(maxsize=1)
def source_code_version() -> str:
    """Content hash of the repro package source (stable per code state).

    Hashes every ``.py`` file under the package root in sorted relative
    order, so it is independent of filesystem layout and needs no git
    checkout.  Cached per process — the source does not change under a
    running interpreter.
    """
    import repro

    root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(path.relative_to(root).as_posix().encode("utf-8"))
        digest.update(b"\x00")
        digest.update(path.read_bytes())
        digest.update(b"\x00")
    return "src-" + digest.hexdigest()[:20]


def config_hash(config: object) -> str:
    """Canonical hash of an artifact's config block (order-insensitive)."""
    blob = json.dumps(
        config, separators=(",", ":"), sort_keys=True, default=str
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def provenance_record(
    *,
    seed: Optional[int] = None,
    config: object = None,
    counters: Optional[Dict[str, int]] = None,
) -> Dict[str, object]:
    """Build a provenance block for an artifact being written now."""
    return {
        "format": PROVENANCE_FORMAT,
        "code_version": source_code_version(),
        "payload_schema_version": PAYLOAD_SCHEMA_VERSION,
        "seed": seed,
        "config_hash": config_hash(config),
        "counters": dict(counters) if counters is not None
        else COUNTERS.snapshot(),
    }


def stamp_payload(payload: Dict[str, object]) -> Dict[str, object]:
    """Attach a provenance block to a bench/experiment payload in place.

    The config block being stamped is the payload's own ``"config"`` entry
    (``None`` if absent), and the seed is lifted from it when present; a
    payload already stamped is returned unchanged so explicit stamps win.
    """
    if "provenance" in payload:
        return payload
    config = payload.get("config")
    seed: Optional[int] = None
    if isinstance(config, dict):
        raw_seed = config.get("seed")
        if isinstance(raw_seed, int) and not isinstance(raw_seed, bool):
            seed = raw_seed
    payload["provenance"] = provenance_record(seed=seed, config=config)
    return payload


def file_sha256(path: str) -> str:
    """Content hash of one artifact file (binding sidecars to outputs)."""
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(65536), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _verify_bound_files(path: str, payload: Dict[str, object]) -> List[str]:
    """Re-hash sibling files recorded in ``config["files"]``.

    Experiment sidecars bind their ``.txt``/``.csv`` outputs by checksum
    (inside the config block, so the recorded hashes are themselves
    covered by ``config_hash``); an edited or missing output file is a
    mismatch even though the sidecar JSON is internally consistent.
    """
    config = payload.get("config")
    if not isinstance(config, dict):
        return []
    files = config.get("files")
    if not isinstance(files, dict):
        return []
    base = os.path.dirname(os.path.abspath(path))
    problems: List[str] = []
    for name in sorted(files):
        target = os.path.join(base, str(name))
        if not os.path.isfile(target):
            problems.append(f"recorded file {name!r} is missing")
        elif file_sha256(target) != files[name]:
            problems.append(
                f"recorded file {name!r} has changed since stamping"
            )
    return problems


def verify_artifact(path: str) -> Tuple[str, List[str]]:
    """Check one artifact file; returns ``(status, problems)``.

    Statuses: ``"ok"`` (stamp matches), ``"drift"`` (valid stamp, but the
    code has changed since — the PR-3 staleness case), ``"mismatch"``
    (stamp inconsistent with the artifact's content: tampered or
    corrupted), ``"unstamped"`` (no provenance block), ``"unreadable"``
    (not JSON).  Never raises on bad input.
    """
    problems: List[str] = []
    try:
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except (OSError, UnicodeDecodeError, json.JSONDecodeError) as exc:
        return "unreadable", [f"cannot parse: {exc}"]
    if not isinstance(payload, dict) or "provenance" not in payload:
        return "unstamped", ["no provenance block"]
    stamp = payload["provenance"]
    if not isinstance(stamp, dict) or stamp.get("format") != PROVENANCE_FORMAT:
        return "mismatch", ["provenance block has an unknown format"]
    expected = config_hash(payload.get("config"))
    if stamp.get("config_hash") != expected:
        problems.append(
            "config_hash does not match the artifact's config block "
            "(config edited after stamping?)"
        )
    if stamp.get("payload_schema_version") != PAYLOAD_SCHEMA_VERSION:
        problems.append(
            f"payload schema version {stamp.get('payload_schema_version')!r}"
            f" != current {PAYLOAD_SCHEMA_VERSION}"
        )
    problems.extend(_verify_bound_files(path, payload))
    if problems:
        return "mismatch", problems
    if stamp.get("code_version") != source_code_version():
        return "drift", [
            f"written by {stamp.get('code_version')}, current code is "
            f"{source_code_version()} — rerun to refresh"
        ]
    return "ok", []


def verify_artifacts_dir(directory: str) -> Dict[str, List[Tuple[str, List[str]]]]:
    """Verify every ``*.json`` under *directory*, grouped by status."""
    grouped: Dict[str, List[Tuple[str, List[str]]]] = {}
    for name in sorted(os.listdir(directory)):
        if not name.endswith(".json"):
            continue
        path = os.path.join(directory, name)
        status, problems = verify_artifact(path)
        grouped.setdefault(status, []).append((name, problems))
    return grouped
