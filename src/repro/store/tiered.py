"""Two-tier result cache: in-memory LRU front, durable sqlite back.

Drop-in replacement for the service's :class:`~repro.service.cache.LRUCache`
(same ``get``/``put``/``stats`` surface), used by
:class:`~repro.service.handlers.AdmissionService` when ``python -m repro
serve`` is given ``--store PATH``.  Reads probe the memory tier first and
fall back to the store, promoting durable hits into memory; writes go to
both tiers.  A restarted server therefore starts *warm*: everything the
previous process computed is one sqlite read away, and the first repeat
request is already a cache hit instead of a recompute.

Counter semantics: ``svc_cache_hits``/``svc_cache_misses`` count the
*combined* cache outcome (a durable hit is a cache hit — the request was
not recomputed), while the ``st_*`` counters incremented by the backend
break out how often the durable tier was the one that answered.  The
front tier runs with ``mirror_counters=False`` so a memory miss that the
store answers is not double-counted as a miss.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.perf.telemetry import COUNTERS
from repro.service.cache import LRUCache
from repro.store.backend import ResultStore

__all__ = ["TieredCache"]


class TieredCache:
    """LRU front + :class:`ResultStore` back, promoting on durable hits."""

    def __init__(
        self,
        capacity: int,
        store: ResultStore,
        *,
        namespace: str = "service",
    ) -> None:
        self.memory = LRUCache(capacity, mirror_counters=False)
        self.store = store
        self.namespace = namespace
        self.hits = 0
        self.misses = 0
        #: Hits answered by the durable tier (subset of ``hits``).
        self.store_hits = 0

    def __len__(self) -> int:
        return len(self.memory)

    def get(self, key: str) -> Tuple[bool, Optional[object]]:
        """Return ``(found, value)``, probing memory then the store."""
        found, value = self.memory.get(key)
        if found:
            self.hits += 1
            COUNTERS.svc_cache_hits += 1
            return True, value
        found, value = self.store.get(self.namespace, key)
        if found:
            self.memory.put(key, value)
            self.hits += 1
            self.store_hits += 1
            COUNTERS.svc_cache_hits += 1
            return True, value
        self.misses += 1
        COUNTERS.svc_cache_misses += 1
        return False, None

    def put(self, key: str, value: object) -> None:
        """Write through both tiers (insert-or-get in the durable one).

        The memory tier keeps the store's canonical value when the key was
        already present durably, so every tier serves the same bytes.
        """
        stored = self.store.put(self.namespace, key, value)
        self.memory.put(key, stored)

    def clear(self) -> None:
        """Drop the memory tier only — durable entries are the point."""
        self.memory.clear()

    def close(self) -> None:
        self.store.close()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, object]:
        """Snapshot for ``/metrics`` (combined plus per-tier numbers)."""
        return {
            "size": len(self.memory),
            "capacity": self.memory.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.memory.evictions,
            "hit_rate": round(self.hit_rate, 6),
            "tiers": {
                "memory": self.memory.stats(),
                "store": {
                    "hits": self.store_hits,
                    **self.store.stats().as_dict(),
                },
            },
        }
