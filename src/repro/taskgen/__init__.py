"""Random task-set generation for schedulability experiments.

* :mod:`repro.taskgen.uunifast` — UUniFast / UUniFast-discard;
* :mod:`repro.taskgen.randfixedsum` — Stafford's RandFixedSum;
* :mod:`repro.taskgen.periods` — log-uniform / uniform / discrete /
  harmonic / K-chain period models;
* :mod:`repro.taskgen.generators` — :class:`TaskSetGenerator`, the
  configuration object the experiment harness consumes.
"""

from repro.taskgen.uunifast import uunifast, uunifast_discard, uniform_utilizations
from repro.taskgen.randfixedsum import randfixedsum, randfixedsum_utilizations
from repro.taskgen.periods import (
    loguniform_periods,
    uniform_periods,
    discrete_periods,
    harmonic_periods,
    k_chain_periods,
)
from repro.taskgen.generators import TaskSetGenerator, make_rng
from repro.taskgen.workloads import WORKLOAD_PRESETS, build_workload, preset_names

__all__ = [
    "uunifast",
    "uunifast_discard",
    "uniform_utilizations",
    "randfixedsum",
    "randfixedsum_utilizations",
    "loguniform_periods",
    "uniform_periods",
    "discrete_periods",
    "harmonic_periods",
    "k_chain_periods",
    "TaskSetGenerator",
    "make_rng",
    "WORKLOAD_PRESETS",
    "build_workload",
    "preset_names",
]
