"""Task-set generator configurations combining utilizations and periods.

:class:`TaskSetGenerator` is the one-stop factory the experiment harness
uses: it pairs a utilization model (UUniFast-discard or RandFixedSum, with
an optional per-task cap producing *light* sets) with a period model
(log-uniform / uniform / discrete / harmonic / K-chain), and emits
:class:`repro.core.task.TaskSet` objects at a requested normalized
utilization.

Every generator call takes an explicit seed or Generator so experiment runs
are exactly reproducible; batch generation is provided for sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator, List, Optional, Union

import numpy as np

from repro._util.validation import check_positive
from repro.core.bounds import light_task_threshold
from repro.core.task import Task, TaskSet
from repro.taskgen.uunifast import uunifast_discard
from repro.taskgen.randfixedsum import randfixedsum_utilizations
from repro.taskgen.periods import (
    discrete_periods,
    harmonic_periods,
    k_chain_periods,
    loguniform_periods,
    uniform_periods,
)

__all__ = ["TaskSetGenerator", "make_rng"]


def make_rng(seed: Union[int, np.random.Generator, None]) -> np.random.Generator:
    """Normalize a seed-or-generator argument into a Generator."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


@dataclass(frozen=True)
class TaskSetGenerator:
    """Reproducible random task-set factory.

    Parameters
    ----------
    n:
        Number of tasks per set.
    util_model:
        ``"uunifast"`` (UUniFast-discard) or ``"randfixedsum"``.
    period_model:
        ``"loguniform"``, ``"uniform"``, ``"discrete"``, ``"harmonic"`` or
        ``"kchain"``.
    max_util:
        Per-task utilization cap; ``None`` means 1.0.  Use
        :meth:`light` to cap at the paper's light-task threshold.
    k:
        Number of harmonic chains (only for ``period_model="kchain"``).
    tmin, tmax:
        Period range for the continuous period models.

    Examples
    --------
    >>> gen = TaskSetGenerator(n=12, period_model="harmonic").light()
    >>> ts = gen.generate(u_norm=0.9, processors=4, seed=1)
    >>> ts.normalized_utilization(4)  # doctest: +ELLIPSIS
    0.9...
    """

    n: int = 16
    util_model: str = "uunifast"
    period_model: str = "loguniform"
    max_util: Optional[float] = None
    k: int = 2
    tmin: float = 10.0
    tmax: float = 1000.0

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError("n must be >= 1")
        if self.util_model not in ("uunifast", "randfixedsum"):
            raise ValueError(f"unknown util_model {self.util_model!r}")
        if self.period_model not in (
            "loguniform",
            "uniform",
            "discrete",
            "harmonic",
            "kchain",
        ):
            raise ValueError(f"unknown period_model {self.period_model!r}")
        if self.max_util is not None and not 0.0 < self.max_util <= 1.0:
            raise ValueError("max_util must lie in (0, 1]")

    # -- fluent configuration --------------------------------------------------

    def light(self) -> "TaskSetGenerator":
        """Cap per-task utilization at ``Theta(n)/(1+Theta(n))``
        (Definition 1), producing light task sets."""
        return replace(self, max_util=light_task_threshold(self.n))

    def with_cap(self, max_util: float) -> "TaskSetGenerator":
        """Cap per-task utilization at *max_util*."""
        return replace(self, max_util=max_util)

    # -- generation ----------------------------------------------------------

    def _utilizations(
        self, u_total: float, rng: np.random.Generator
    ) -> np.ndarray:
        cap = self.max_util if self.max_util is not None else 1.0
        if self.util_model == "uunifast":
            try:
                return uunifast_discard(
                    self.n, u_total, rng, max_util=cap, max_tries=500
                )
            except RuntimeError:
                # UUniFast-discard degenerates when the cap is tight
                # relative to u_total/n (nearly every draw is rejected);
                # RandFixedSum samples the same constrained simplex with no
                # rejection, so fall back to it — exactly why
                # Emberson et al. introduced it for task-set generation.
                return randfixedsum_utilizations(
                    self.n, u_total, rng, max_util=cap
                )
        return randfixedsum_utilizations(self.n, u_total, rng, max_util=cap)

    def _periods(self, rng: np.random.Generator) -> np.ndarray:
        if self.period_model == "loguniform":
            return loguniform_periods(self.n, rng, tmin=self.tmin, tmax=self.tmax)
        if self.period_model == "uniform":
            return uniform_periods(self.n, rng, tmin=self.tmin, tmax=self.tmax)
        if self.period_model == "discrete":
            return discrete_periods(self.n, rng)
        if self.period_model == "harmonic":
            return harmonic_periods(self.n, rng, base=self.tmin)
        return k_chain_periods(self.n, self.k, rng, base_low=self.tmin)

    def generate(
        self,
        *,
        u_norm: float,
        processors: int,
        seed: Union[int, np.random.Generator, None] = None,
    ) -> TaskSet:
        """One task set with normalized utilization ``u_norm`` on
        *processors* processors (total utilization ``u_norm * M``)."""
        check_positive("u_norm", u_norm)
        check_positive("processors", processors)
        rng = make_rng(seed)
        u_total = u_norm * processors
        utils = self._utilizations(u_total, rng)
        periods = self._periods(rng)
        tasks = [
            Task(cost=float(u * t), period=float(t))
            for u, t in zip(utils, periods)
        ]
        return TaskSet(tasks)

    def batch(
        self,
        *,
        u_norm: float,
        processors: int,
        count: int,
        seed: Union[int, np.random.Generator, None] = None,
    ) -> List[TaskSet]:
        """A list of *count* independent task sets (single RNG stream)."""
        rng = make_rng(seed)
        return [
            self.generate(u_norm=u_norm, processors=processors, seed=rng)
            for _ in range(count)
        ]

    def stream(
        self,
        *,
        u_norm: float,
        processors: int,
        seed: Union[int, np.random.Generator, None] = None,
    ) -> Iterator[TaskSet]:
        """An endless iterator of task sets (for loop-until-converged use)."""
        rng = make_rng(seed)
        while True:
            yield self.generate(u_norm=u_norm, processors=processors, seed=rng)
