"""Period generation: log-uniform, uniform, discrete, harmonic and K-chain.

The paper's parametric bounds are functions of the period structure, so the
experiment suite needs precise control over it:

* **log-uniform** periods (the standard choice: equal density per order of
  magnitude) for general task sets;
* **harmonic** period sets — every pair of periods divides — for the 100 %
  bound instantiation (E1);
* **K-chain** sets: the union of exactly *K* harmonic chains with mutually
  non-harmonic bases, exercising the harmonic-chain bound
  ``K (2^{1/K} - 1)`` (E2);
* **discrete** menus (e.g. {1, 2, 5, 10, 20, 50, 100} ms) mimicking
  industrial configurations.

Generators return float arrays; combine with a utilization generator via
:mod:`repro.taskgen.generators`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro._util.validation import check_positive
from repro.core.bounds import harmonic_chain_count

__all__ = [
    "loguniform_periods",
    "uniform_periods",
    "discrete_periods",
    "harmonic_periods",
    "k_chain_periods",
]


def loguniform_periods(
    n: int,
    rng: np.random.Generator,
    *,
    tmin: float = 10.0,
    tmax: float = 1000.0,
) -> np.ndarray:
    """Periods log-uniform in ``[tmin, tmax]``."""
    check_positive("tmin", tmin)
    if tmax <= tmin:
        raise ValueError("tmax must exceed tmin")
    return np.exp(rng.uniform(np.log(tmin), np.log(tmax), size=n))


def uniform_periods(
    n: int,
    rng: np.random.Generator,
    *,
    tmin: float = 10.0,
    tmax: float = 1000.0,
) -> np.ndarray:
    """Periods uniform in ``[tmin, tmax]``."""
    check_positive("tmin", tmin)
    if tmax <= tmin:
        raise ValueError("tmax must exceed tmin")
    return rng.uniform(tmin, tmax, size=n)


def discrete_periods(
    n: int,
    rng: np.random.Generator,
    *,
    menu: Sequence[float] = (10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0),
) -> np.ndarray:
    """Periods drawn uniformly from a fixed *menu* of values."""
    if not menu:
        raise ValueError("menu must be non-empty")
    return rng.choice(np.asarray(menu, dtype=float), size=n, replace=True)


def harmonic_periods(
    n: int,
    rng: np.random.Generator,
    *,
    base: float = 10.0,
    max_factor: int = 3,
    max_ratio: float = 100.0,
) -> np.ndarray:
    """A fully harmonic period set (single chain).

    Built as a random multiplicative chain ``T_{i+1} = T_i * f`` with
    ``f in {1..max_factor}``; once the ratio cap ``base * max_ratio`` would
    be exceeded the chain stays at its current value (factor 1), which
    keeps *every* pair of produced periods in a divides relation —
    resetting to the base would not (``6*base`` and ``4*base`` are both
    multiples of ``base`` but not of each other).  The result is shuffled,
    and :func:`repro.core.bounds.harmonic_chain_count` returns 1 on it.
    """
    check_positive("base", base)
    if max_factor < 1:
        raise ValueError("max_factor must be >= 1")
    periods = np.empty(n, dtype=float)
    current = base
    cap = base * max_ratio
    for i in range(n):
        periods[i] = current
        factor = int(rng.integers(1, max_factor + 1))
        if current * factor <= cap:
            current = current * factor
    rng.shuffle(periods)
    return periods


def k_chain_periods(
    n: int,
    k: int,
    rng: np.random.Generator,
    *,
    base_low: float = 10.0,
    base_high: float = 13.0,
    max_factor: int = 3,
    max_ratio: float = 64.0,
    verify: bool = True,
) -> np.ndarray:
    """Periods forming exactly *k* harmonic chains.

    Each chain grows from its own base; bases are irrational-looking reals
    drawn from ``[base_low, base_high)`` rescaled by distinct prime-ish
    multipliers so no cross-chain pair is harmonic.  Tasks are spread over
    chains round-robin.  With ``verify=True`` (default) the construction is
    checked with the exact minimum-chain-cover computation and redrawn if a
    smaller cover exists (can only happen with astronomically unlikely
    rational collisions).
    """
    if k < 1:
        raise ValueError("need k >= 1")
    if n < k:
        raise ValueError("need at least one task per chain")
    # Multipliers chosen so that ratios between any two chains' periods are
    # never integers: pairwise ratios of these primes times a random real.
    primes = [1.0, 1.31, 1.73, 2.39, 3.11, 4.63, 5.87, 7.91, 9.67, 11.41]
    if k > len(primes):
        raise ValueError(f"k up to {len(primes)} supported")
    for _ in range(100):
        bases = rng.uniform(base_low, base_high) * np.asarray(primes[:k])
        sizes = [n // k + (1 if i < n % k else 0) for i in range(k)]
        periods = []
        for chain, size in enumerate(sizes):
            current = float(bases[chain])
            cap = current * max_ratio
            for _ in range(size):
                periods.append(current)
                factor = int(rng.integers(1, max_factor + 1))
                if current * factor <= cap:
                    current = current * factor
        arr = np.asarray(periods, dtype=float)
        rng.shuffle(arr)
        if not verify or harmonic_chain_count(arr) == k:
            return arr
    raise RuntimeError(f"failed to construct a {k}-chain period set")
