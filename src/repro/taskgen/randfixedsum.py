"""Stafford's RandFixedSum: uniform vectors with a fixed sum and bounds.

UUniFast-discard becomes inefficient when the total utilization is close to
``n * max_util`` (nearly all draws are rejected).  Roger Stafford's
RandFixedSum algorithm samples *exactly* uniformly from the intersection of
the hypercube ``[0, 1]^n`` with the hyperplane ``sum x = s`` with no
rejection, which is why Emberson/Stafford/Bini's task-set generator adopted
it.  This is a NumPy port of the original MATLAB routine specialised to the
``[0, 1]`` cube (utilizations are rescaled afterwards for other bounds).
"""

from __future__ import annotations

import numpy as np

__all__ = ["randfixedsum", "randfixedsum_utilizations"]


def randfixedsum(
    n: int, s: float, rng: np.random.Generator, *, m: int = 1
) -> np.ndarray:
    """Draw *m* vectors of length *n* in ``[0, 1]`` with component sum *s*.

    Returns an array of shape ``(m, n)``.  Requires ``0 <= s <= n``.
    The samples are uniform over the (n-1)-dimensional polytope
    ``{x in [0,1]^n : sum x = s}``.
    """
    if n < 1:
        raise ValueError("need n >= 1")
    if not 0.0 <= s <= n:
        raise ValueError(f"sum must lie in [0, {n}], got {s}")
    if n == 1:
        return np.full((m, 1), s, dtype=float)

    # Probability table over the simplex decomposition.
    k = int(min(max(np.floor(s), 0), n - 1))
    s = float(s)
    s1 = s - np.arange(k, k - n, -1, dtype=float)
    s2 = np.arange(k + n, k, -1, dtype=float) - s

    tiny = np.finfo(float).tiny
    huge = np.finfo(float).max
    w = np.zeros((n, n + 1))
    w[0, 1] = huge
    t = np.zeros((n - 1, n))
    for i in range(2, n + 1):
        tmp1 = w[i - 2, 1 : i + 1] * s1[: i] / i
        tmp2 = w[i - 2, : i] * s2[n - i : n] / i
        w[i - 1, 1 : i + 1] = tmp1 + tmp2
        tmp3 = w[i - 1, 1 : i + 1] + tiny
        tmp4 = s2[n - i : n] > s1[: i]
        t[i - 2, : i] = (tmp2 / tmp3) * tmp4 + (1.0 - tmp1 / tmp3) * (~tmp4)

    x = np.zeros((n, m))
    rt = rng.random((n - 1, m))  # rand simplex type
    rs = rng.random((n - 1, m))  # rand position in simplex
    sm = np.zeros(m)
    pr = np.ones(m)
    j = np.full(m, k + 1, dtype=int)

    for i in range(n - 1, 0, -1):
        e = rt[n - i - 1, :] <= t[i - 1, np.clip(j - 1, 0, n - 1)]
        sx = rs[n - i - 1, :] ** (1.0 / i)
        sm += (1.0 - sx) * pr * s / (i + 1)
        pr *= sx
        x[n - i - 1, :] = sm + pr * e
        s = s - e
        j = j - e.astype(int)
    x[n - 1, :] = sm + pr * s

    # Random permutation per sample (the construction is ordered).
    out = x.T.copy()
    for row in out:
        rng.shuffle(row)
    return out


def randfixedsum_utilizations(
    n: int,
    u_total: float,
    rng: np.random.Generator,
    *,
    max_util: float = 1.0,
) -> np.ndarray:
    """One utilization vector summing to *u_total*, each ``<= max_util``.

    Implemented by sampling on the unit cube scaled by *max_util*:
    ``x in [0, max_util]^n`` with ``sum x = u_total`` is the image of
    ``randfixedsum(n, u_total / max_util)`` under multiplication by
    *max_util*, preserving uniformity.
    """
    if max_util <= 0:
        raise ValueError("max_util must be positive")
    if u_total > n * max_util:
        raise ValueError("infeasible: u_total exceeds n * max_util")
    sample = randfixedsum(n, u_total / max_util, rng, m=1)[0]
    return sample * max_util
