"""Utilization generation: UUniFast, UUniFast-discard and capped variants.

UUniFast (Bini & Buttazzo) draws a vector of ``n`` task utilizations that
sums exactly to ``u_total``, uniformly over the standard simplex — the de
facto standard generator in schedulability evaluations, including the one
this paper's line of work uses.

For multiprocessor experiments ``u_total`` exceeds 1, where plain UUniFast
can emit individual utilizations above 1 (infeasible for a sequential
task); **UUniFast-discard** (Davis & Burns) redraws until every utilization
respects a cap.  A cap below 1 also produces the paper's *light* task sets
(``U_i <= Theta/(1+Theta)``).

All functions are vectorized NumPy and take an explicit
``numpy.random.Generator`` — no hidden global state, per the HPC guides.
"""

from __future__ import annotations

import numpy as np

from repro._util.floats import EPS
from repro._util.validation import check_positive

__all__ = ["uunifast", "uunifast_discard", "uniform_utilizations"]


def uunifast(n: int, u_total: float, rng: np.random.Generator) -> np.ndarray:
    """Draw ``n`` utilizations summing to *u_total* (uniform on the simplex).

    The classic O(n) recurrence: ``sum_i = u_total * rand^{1/i}`` walking
    ``i = n-1 .. 1``.
    """
    if n < 1:
        raise ValueError("need at least one task")
    check_positive("u_total", u_total)
    if n == 1:
        return np.array([u_total], dtype=float)
    # Vectorized recurrence: sum_k = u_total * prod_{j>k} r_j^{1/j}.
    exponents = 1.0 / np.arange(n - 1, 0, -1, dtype=float)
    factors = rng.random(n - 1) ** exponents
    sums = np.empty(n, dtype=float)
    sums[0] = u_total
    sums[1:] = u_total * np.cumprod(factors)
    utils = np.empty(n, dtype=float)
    utils[:-1] = sums[:-1] - sums[1:]
    utils[-1] = sums[-1]
    return utils


def uunifast_discard(
    n: int,
    u_total: float,
    rng: np.random.Generator,
    *,
    max_util: float = 1.0,
    min_util: float = 0.0,
    max_tries: int = 10_000,
) -> np.ndarray:
    """UUniFast with rejection until every utilization lies in
    ``[min_util, max_util]``.

    Raises ``RuntimeError`` when the constraint is infeasible or so tight
    that *max_tries* redraws are exhausted (e.g. ``u_total > n * max_util``
    is rejected up front).
    """
    check_positive("max_util", max_util)
    if u_total > n * max_util + EPS:
        raise ValueError(
            f"cannot place total utilization {u_total} on {n} tasks "
            f"capped at {max_util}"
        )
    if u_total < n * min_util - EPS:
        raise ValueError(
            f"total utilization {u_total} below the n*min_util floor"
        )
    for _ in range(max_tries):
        utils = uunifast(n, u_total, rng)
        if utils.max() <= max_util + EPS and utils.min() >= min_util - EPS:
            return np.clip(utils, min_util, max_util)
    raise RuntimeError(
        f"UUniFast-discard exhausted {max_tries} tries "
        f"(n={n}, u_total={u_total}, max_util={max_util})"
    )


def uniform_utilizations(
    n: int,
    rng: np.random.Generator,
    *,
    low: float = 0.05,
    high: float = 0.5,
) -> np.ndarray:
    """Independent per-task utilizations, uniform in ``[low, high]``.

    Unlike UUniFast the total is random; useful for breakdown-utilization
    experiments where the set is subsequently scaled.
    """
    if not 0.0 < low <= high <= 1.0:
        raise ValueError("need 0 < low <= high <= 1")
    return rng.uniform(low, high, size=n)
