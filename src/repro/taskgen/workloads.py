"""Named, realistic workload presets.

Random generators answer statistical questions; named workloads answer
"does this behave sensibly on something shaped like a real system?".
Each preset documents its provenance/rationale and is used by examples,
tests and the CLI (``python -m repro generate --preset avionics``).

* ``avionics``     — ARINC-653-flavoured harmonic rate groups
  (80/40/20/10 Hz), light tasks; the paper's 100 %-bound sweet spot.
* ``automotive``   — periods from the classic automotive benchmark
  distribution (Kramer/Dürr/Brüggen's published period histogram:
  1/2/5/10/20/50/100/200/1000 ms with characteristic weights); mixed
  utilizations, *not* harmonic — exercises the general RM-TS path.
* ``robotics``     — a control stack: fast servo loops + mid-rate fusion
  + slow planners; two harmonic chains (K = 2), matching the paper's
  harmonic-chain instantiation.
* ``infotainment`` — few fat soft-ish tasks with long periods plus
  housekeeping; heavy tasks trigger RM-TS pre-assignment.

Each builder takes a target normalized utilization and a processor count
and scales costs to hit it exactly, so presets compose with the whole
analysis pipeline.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple, Union

import numpy as np

from repro._util.floats import approx_ge
from repro._util.validation import check_positive
from repro.core.task import Task, TaskSet
from repro.taskgen.generators import make_rng

__all__ = ["WORKLOAD_PRESETS", "build_workload", "preset_names"]

#: Automotive period menu (ms) and occurrence weights, following the
#: published benchmark characterization (angle-synchronous tasks are
#: approximated by their worst-case 1 ms period).
_AUTOMOTIVE_PERIODS = np.array(
    [1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 1000.0]
)
_AUTOMOTIVE_WEIGHTS = np.array(
    [0.03, 0.02, 0.02, 0.25, 0.25, 0.03, 0.20, 0.01, 0.19]
)


def _scale_to_utilization(
    entries: Sequence[Tuple[str, float, float]],
    u_norm: float,
    processors: int,
) -> TaskSet:
    """Build a TaskSet from (name, weight, period) rows, scaling the
    weights so total utilization equals ``u_norm * processors``."""
    total_weight = sum(w for _, w, _ in entries)
    target = u_norm * processors
    tasks: List[Task] = []
    for name, weight, period in entries:
        util = weight / total_weight * target
        if approx_ge(util, 1.0):
            raise ValueError(
                f"preset task {name!r} would need utilization {util:.2f} "
                f">= 1; raise the processor count or lower u_norm"
            )
        tasks.append(Task(cost=util * period, period=period, name=name))
    return TaskSet(tasks)


def _avionics(u_norm: float, processors: int, rng) -> TaskSet:
    entries = [
        ("gyro_filter", 1.0, 12.5),
        ("attitude_ctl", 1.2, 12.5),
        ("servo_cmd", 0.8, 12.5),
        ("guidance", 1.3, 25.0),
        ("airdata", 0.9, 25.0),
        ("nav_filter", 1.5, 50.0),
        ("gps_fusion", 1.0, 50.0),
        ("mission_mgr", 1.2, 100.0),
        ("telemetry", 1.0, 100.0),
        ("health_mon", 0.6, 100.0),
    ]
    return _scale_to_utilization(entries, u_norm, processors)


def _automotive(u_norm: float, processors: int, rng) -> TaskSet:
    n = 15
    periods = rng.choice(
        _AUTOMOTIVE_PERIODS, size=n, p=_AUTOMOTIVE_WEIGHTS / _AUTOMOTIVE_WEIGHTS.sum()
    )
    weights = rng.uniform(0.5, 1.5, size=n)
    entries = [
        (f"runnable_{i}", float(w), float(p))
        for i, (w, p) in enumerate(zip(weights, periods))
    ]
    return _scale_to_utilization(entries, u_norm, processors)


def _robotics(u_norm: float, processors: int, rng) -> TaskSet:
    entries = [
        # chain A: motor control at 1 kHz -> 250 Hz -> 62.5 Hz
        ("current_loop", 1.4, 1.0),
        ("velocity_loop", 1.2, 4.0),
        ("position_loop", 1.0, 16.0),
        ("trajectory", 0.9, 64.0),
        # chain B: perception at 30-ish Hz stack (non-harmonic with A)
        ("camera_grab", 1.3, 3.3),
        ("feature_track", 1.1, 13.2),
        ("slam_update", 1.2, 52.8),
        ("path_plan", 0.8, 105.6),
    ]
    return _scale_to_utilization(entries, u_norm, processors)


def _infotainment(u_norm: float, processors: int, rng) -> TaskSet:
    entries = [
        ("audio_decode", 3.0, 10.0),
        ("ui_render", 3.5, 16.7),
        ("media_index", 2.5, 500.0),
        ("nav_route", 2.0, 200.0),
        ("voice_dsp", 2.8, 20.0),
        ("housekeeping_a", 0.4, 100.0),
        ("housekeeping_b", 0.4, 250.0),
        ("logger", 0.4, 1000.0),
    ]
    return _scale_to_utilization(entries, u_norm, processors)


WORKLOAD_PRESETS: Dict[str, Callable] = {
    "avionics": _avionics,
    "automotive": _automotive,
    "robotics": _robotics,
    "infotainment": _infotainment,
}


def preset_names() -> List[str]:
    """The available preset identifiers."""
    return sorted(WORKLOAD_PRESETS)


def build_workload(
    preset: str,
    *,
    u_norm: float = 0.7,
    processors: int = 4,
    seed: Union[int, np.random.Generator, None] = 0,
) -> TaskSet:
    """Instantiate a named workload at the requested utilization.

    ``u_norm * processors`` becomes the total utilization; presets with
    randomized structure (``automotive``) use *seed* for reproducibility.
    """
    check_positive("u_norm", u_norm)
    check_positive("processors", processors)
    try:
        builder = WORKLOAD_PRESETS[preset]
    except KeyError:
        raise ValueError(
            f"unknown preset {preset!r}; available: {', '.join(preset_names())}"
        ) from None
    return builder(u_norm, processors, make_rng(seed))
