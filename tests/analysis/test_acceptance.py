"""Tests for acceptance-ratio machinery."""

import pytest

from repro.analysis.acceptance import (
    SweepResult,
    acceptance_ratio,
    acceptance_sweep,
)
from repro.analysis.algorithms import (
    rmts_light_test,
    rmts_test,
    standard_algorithms,
)
from repro.core.task import TaskSet
from repro.taskgen.generators import TaskSetGenerator


def always(ts, m):
    return True


def never(ts, m):
    return False


class TestAcceptanceRatio:
    def test_extremes(self, harmonic_set):
        sets = [harmonic_set] * 4
        assert acceptance_ratio(always, sets, 2) == 1.0
        assert acceptance_ratio(never, sets, 2) == 0.0

    def test_counts_fraction(self, harmonic_set, general_set):
        def only_harmonic(ts, m):
            return ts.is_harmonic()

        assert acceptance_ratio(
            only_harmonic, [harmonic_set, general_set], 2
        ) == 0.5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            acceptance_ratio(always, [], 2)


class TestAcceptanceSweep:
    def _sweep(self):
        gen = TaskSetGenerator(n=6)
        return acceptance_sweep(
            {"yes": always, "no": never},
            gen,
            processors=2,
            u_grid=[0.5, 0.7, 0.9],
            samples=5,
            seed=0,
        )

    def test_curve_shapes(self):
        sweep = self._sweep()
        assert sweep.curves["yes"] == [1.0, 1.0, 1.0]
        assert sweep.curves["no"] == [0.0, 0.0, 0.0]

    def test_table(self):
        table = self._sweep().table("t")
        assert table.header == ["U_M", "yes", "no"]
        assert len(table) == 3

    def test_dominates(self):
        sweep = self._sweep()
        assert sweep.dominates("yes", "no")
        assert not sweep.dominates("no", "yes")

    def test_crossover(self):
        sweep = self._sweep()
        assert sweep.crossover("no", level=0.5) == 0.5
        assert sweep.crossover("yes", level=0.5) is None

    def test_area(self):
        sweep = self._sweep()
        assert sweep.area("yes") == pytest.approx(0.4)  # grid span
        assert sweep.area("no") == 0.0

    def test_validates_args(self):
        gen = TaskSetGenerator(n=4)
        with pytest.raises(ValueError):
            acceptance_sweep({}, gen, processors=2, u_grid=[0.5], samples=5)
        with pytest.raises(ValueError):
            acceptance_sweep(
                {"a": always}, gen, processors=2, u_grid=[0.5], samples=0
            )

    def test_same_workloads_for_all_algorithms(self):
        """Curves are comparable: a test and its negation sum to 1."""
        gen = TaskSetGenerator(n=8)

        seen_a, seen_b = [], []

        def spy_a(ts, m):
            seen_a.append(ts)
            return True

        def spy_b(ts, m):
            seen_b.append(ts)
            return True

        acceptance_sweep(
            {"a": spy_a, "b": spy_b},
            gen,
            processors=2,
            u_grid=[0.6],
            samples=4,
            seed=1,
        )
        assert seen_a == seen_b


class TestAlgorithmMenu:
    def test_standard_menu_keys(self):
        menu = standard_algorithms()
        assert {"RM-TS", "SPA2", "P-RM-FFD"} <= set(menu)

    def test_optional_entries(self):
        menu = standard_algorithms(include_light=True, include_global=True)
        assert "RM-TS/light" in menu and "SPA1" in menu
        assert "RM-US(test)" in menu

    def test_tests_are_callable(self, harmonic_set):
        for name, test in standard_algorithms(include_light=True).items():
            assert isinstance(test(harmonic_set, 2), bool), name

    def test_rmts_test_with_kwargs(self, harmonic_set):
        test = rmts_test(None, dedicate_over_bound=False)
        assert test(harmonic_set, 2) in (True, False)

    def test_rmts_light_test(self, harmonic_set):
        assert rmts_light_test()(harmonic_set, 2) is True
