"""Tests for breakdown-utilization search."""

import pytest

from repro.analysis.breakdown import (
    BreakdownStats,
    average_breakdown,
    breakdown_utilization,
)
from repro.core.rta import is_schedulable
from repro.core.task import Subtask, TaskSet
from repro.taskgen.generators import TaskSetGenerator


def uniproc_rta(ts, m):
    return is_schedulable([Subtask.whole(t) for t in ts])


def utilization_cap_test(cap):
    def test(ts, m):
        return ts.normalized_utilization(m) <= cap

    return test


class TestBreakdownUtilization:
    def test_exact_threshold_found(self, harmonic_set):
        bd = breakdown_utilization(
            utilization_cap_test(0.6), harmonic_set, 2, tolerance=1e-4
        )
        assert bd == pytest.approx(0.6, abs=1e-3)

    def test_harmonic_uniproc_breaks_at_one(self):
        ts = TaskSet.from_pairs([(1, 4), (1, 8), (2, 16)])
        bd = breakdown_utilization(uniproc_rta, ts, 1, tolerance=1e-4)
        assert bd == pytest.approx(1.0, abs=5e-3)

    def test_cap_at_max_individual_utilization(self):
        # max U_i = 0.5 at base; scaling stops when it reaches 1.0, i.e.
        # at twice the base normalized utilization.
        ts = TaskSet.from_pairs([(2, 4), (1, 10)])
        always = lambda t, m: True
        bd = breakdown_utilization(always, ts, 2, tolerance=1e-4)
        assert bd == pytest.approx(2 * ts.normalized_utilization(2), rel=1e-6)

    def test_never_accepted_returns_zero(self, harmonic_set):
        bd = breakdown_utilization(
            lambda t, m: False, harmonic_set, 2, tolerance=1e-3
        )
        assert bd == pytest.approx(0.0, abs=2e-3)

    def test_zero_utilization_rejected(self):
        ts = TaskSet.from_pairs([(1, 4)])
        with pytest.raises(ValueError):
            breakdown_utilization(uniproc_rta, ts, 0)


class TestBreakdownStats:
    def test_summary_statistics(self):
        stats = BreakdownStats(values=[0.5, 0.7, 0.9])
        assert stats.mean == pytest.approx(0.7)
        assert stats.minimum == 0.5
        assert stats.maximum == 0.9
        assert stats.quantile(0.5) == pytest.approx(0.7)
        assert stats.std > 0


class TestAverageBreakdown:
    def test_uniproc_mean_in_plausible_band(self):
        gen = TaskSetGenerator(n=8, period_model="loguniform")
        stats = average_breakdown(
            uniproc_rta, gen, processors=1, samples=10, seed=0,
            tolerance=5e-3,
        )
        # classic result: well above the 69-72% bound, below 1.0
        assert 0.75 < stats.mean <= 1.0

    def test_deterministic(self):
        gen = TaskSetGenerator(n=6)
        a = average_breakdown(uniproc_rta, gen, processors=1, samples=5,
                              seed=3, tolerance=5e-3)
        b = average_breakdown(uniproc_rta, gen, processors=1, samples=5,
                              seed=3, tolerance=5e-3)
        assert a.values == b.values
