"""Tests for breakdown-utilization search."""

import pytest

from repro.analysis.breakdown import (
    STATUS_CAP_HIT,
    STATUS_CONVERGED,
    STATUS_EXHAUSTED,
    BreakdownStats,
    average_breakdown,
    breakdown_search,
    breakdown_utilization,
)
from repro.core.rta import is_schedulable
from repro.core.task import Subtask, TaskSet
from repro.taskgen.generators import TaskSetGenerator


def uniproc_rta(ts, m):
    return is_schedulable([Subtask.whole(t) for t in ts])


def utilization_cap_test(cap):
    def test(ts, m):
        return ts.normalized_utilization(m) <= cap

    return test


class TestBreakdownUtilization:
    def test_exact_threshold_found(self, harmonic_set):
        bd = breakdown_utilization(
            utilization_cap_test(0.6), harmonic_set, 2, tolerance=1e-4
        )
        assert bd == pytest.approx(0.6, abs=1e-3)

    def test_harmonic_uniproc_breaks_at_one(self):
        ts = TaskSet.from_pairs([(1, 4), (1, 8), (2, 16)])
        bd = breakdown_utilization(uniproc_rta, ts, 1, tolerance=1e-4)
        assert bd == pytest.approx(1.0, abs=5e-3)

    def test_cap_at_max_individual_utilization(self):
        # max U_i = 0.5 at base; scaling stops when it reaches 1.0, i.e.
        # at twice the base normalized utilization.
        ts = TaskSet.from_pairs([(2, 4), (1, 10)])
        always = lambda t, m: True
        bd = breakdown_utilization(always, ts, 2, tolerance=1e-4)
        assert bd == pytest.approx(2 * ts.normalized_utilization(2), rel=1e-6)

    def test_never_accepted_returns_zero(self, harmonic_set):
        bd = breakdown_utilization(
            lambda t, m: False, harmonic_set, 2, tolerance=1e-3
        )
        assert bd == pytest.approx(0.0, abs=2e-3)

    def test_zero_utilization_rejected(self):
        ts = TaskSet.from_pairs([(1, 4)])
        with pytest.raises(ValueError):
            breakdown_utilization(uniproc_rta, ts, 0)


class TestBreakdownSearchStatus:
    def test_converged_run_reports_status_and_bracket(self, harmonic_set):
        result = breakdown_search(
            utilization_cap_test(0.6), harmonic_set, 2, tolerance=1e-4
        )
        assert result.status == STATUS_CONVERGED
        assert result.bracket <= 1e-4
        assert result.iterations > 0
        assert result.value == pytest.approx(0.6, abs=1e-3)

    def test_cap_hit_is_reported_not_silently_returned(self):
        ts = TaskSet.from_pairs([(2, 4), (1, 10)])
        result = breakdown_search(lambda t, m: True, ts, 2, tolerance=1e-4)
        assert result.status == STATUS_CAP_HIT
        assert result.bracket == 0.0
        assert result.iterations == 0
        assert result.value == pytest.approx(
            2 * ts.normalized_utilization(2), rel=1e-6
        )

    def test_iteration_budget_exhaustion_is_reported(self, harmonic_set):
        # One iteration cannot shrink the initial bracket below 1e-4, so
        # the seed code would have silently returned a midpoint here.
        result = breakdown_search(
            utilization_cap_test(0.6),
            harmonic_set,
            2,
            tolerance=1e-4,
            max_iterations=1,
        )
        assert result.status == STATUS_EXHAUSTED
        assert result.bracket > 1e-4

    def test_exhausted_value_is_a_lower_bound(self, harmonic_set):
        exhausted = breakdown_search(
            utilization_cap_test(0.6),
            harmonic_set,
            2,
            tolerance=1e-4,
            max_iterations=3,
        )
        converged = breakdown_search(
            utilization_cap_test(0.6), harmonic_set, 2, tolerance=1e-4
        )
        assert exhausted.value <= converged.value
        assert converged.value <= exhausted.value + exhausted.bracket

    def test_value_matches_breakdown_utilization(self, harmonic_set):
        test = utilization_cap_test(0.6)
        assert breakdown_utilization(
            test, harmonic_set, 2, tolerance=1e-3
        ) == breakdown_search(test, harmonic_set, 2, tolerance=1e-3).value


class TestBreakdownStats:
    def test_summary_statistics(self):
        stats = BreakdownStats(values=[0.5, 0.7, 0.9])
        assert stats.mean == pytest.approx(0.7)
        assert stats.minimum == 0.5
        assert stats.maximum == 0.9
        assert stats.quantile(0.5) == pytest.approx(0.7)
        assert stats.std > 0

    def test_status_counts(self):
        stats = BreakdownStats(
            values=[0.5, 0.7, 0.9],
            statuses=[STATUS_CONVERGED, STATUS_CONVERGED, STATUS_CAP_HIT],
        )
        assert stats.status_counts() == {
            STATUS_CONVERGED: 2,
            STATUS_CAP_HIT: 1,
        }

    def test_status_counts_empty_for_value_only_callers(self):
        assert BreakdownStats(values=[0.5]).status_counts() == {}

    def test_mean_ci_is_seeded_and_brackets_the_mean(self):
        stats = BreakdownStats(values=[0.5, 0.6, 0.7, 0.8, 0.9])
        lo, hi = stats.mean_ci(seed=5)
        assert (lo, hi) == stats.mean_ci(seed=5)
        assert lo <= stats.mean <= hi


class TestAverageBreakdown:
    def test_uniproc_mean_in_plausible_band(self):
        gen = TaskSetGenerator(n=8, period_model="loguniform")
        stats = average_breakdown(
            uniproc_rta, gen, processors=1, samples=10, seed=0,
            tolerance=5e-3,
        )
        # classic result: well above the 69-72% bound, below 1.0
        assert 0.75 < stats.mean <= 1.0

    def test_deterministic(self):
        gen = TaskSetGenerator(n=6)
        a = average_breakdown(uniproc_rta, gen, processors=1, samples=5,
                              seed=3, tolerance=5e-3)
        b = average_breakdown(uniproc_rta, gen, processors=1, samples=5,
                              seed=3, tolerance=5e-3)
        assert a.values == b.values
        assert a.statuses == b.statuses

    def test_statuses_populated_per_sample(self):
        gen = TaskSetGenerator(n=6)
        stats = average_breakdown(uniproc_rta, gen, processors=1, samples=5,
                                  seed=3, tolerance=5e-3)
        assert len(stats.statuses) == len(stats.values) == 5
        assert set(stats.statuses) <= {
            STATUS_CONVERGED, STATUS_CAP_HIT, STATUS_EXHAUSTED,
        }
