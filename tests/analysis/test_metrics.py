"""Tests for aggregate schedulability metrics."""

import pytest

from repro.analysis.acceptance import SweepResult
from repro.analysis.metrics import (
    capacity_loss,
    utilization_gain,
    weighted_schedulability,
)


def sweep(curves):
    u = [0.6, 0.8, 1.0]
    return SweepResult(u_grid=u, processors=4, samples=10, curves=curves)


class TestWeightedSchedulability:
    def test_full_acceptance_scores_one(self):
        s = sweep({"a": [1.0, 1.0, 1.0]})
        assert weighted_schedulability(s, "a") == pytest.approx(1.0)

    def test_zero_acceptance_scores_zero(self):
        s = sweep({"a": [0.0, 0.0, 0.0]})
        assert weighted_schedulability(s, "a") == 0.0

    def test_high_load_weighs_more(self):
        drops_late = sweep({"a": [1.0, 1.0, 0.0]})
        drops_early = sweep({"a": [0.0, 1.0, 1.0]})
        assert weighted_schedulability(drops_early, "a") > (
            weighted_schedulability(drops_late, "a")
        )

    def test_explicit_value(self):
        s = sweep({"a": [1.0, 0.5, 0.0]})
        # (0.6*1 + 0.8*0.5 + 1.0*0) / 2.4
        assert weighted_schedulability(s, "a") == pytest.approx(1.0 / 2.4)


class TestUtilizationGain:
    def test_gain_between_crossovers(self):
        s = sweep({"good": [1.0, 1.0, 0.2], "bad": [1.0, 0.2, 0.0]})
        assert utilization_gain(s, "good", "bad") == pytest.approx(0.2)

    def test_none_when_no_crossover(self):
        s = sweep({"good": [1.0, 1.0, 1.0], "bad": [1.0, 0.2, 0.0]})
        assert utilization_gain(s, "good", "bad") is None


class TestCapacityLoss:
    def test_ll_threshold_loss(self):
        assert capacity_loss(0.6931) == pytest.approx(0.3069)

    def test_validates(self):
        with pytest.raises(ValueError):
            capacity_loss(0.0)
        with pytest.raises(ValueError):
            capacity_loss(1.2)
