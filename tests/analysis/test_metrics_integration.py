"""Integration of the aggregate metrics with real acceptance sweeps."""

import pytest

from repro.analysis.acceptance import acceptance_sweep
from repro.analysis.algorithms import rmts_light_test
from repro.analysis.metrics import utilization_gain, weighted_schedulability
from repro.core.baselines.spa import partition_spa1
from repro.core.bounds import ll_bound
from repro.taskgen.generators import TaskSetGenerator


@pytest.fixture(scope="module")
def real_sweep():
    gen = TaskSetGenerator(n=12, period_model="loguniform").light()
    return acceptance_sweep(
        {
            "RM-TS/light": rmts_light_test(),
            "SPA1": lambda ts, m: partition_spa1(ts, m).success,
        },
        gen,
        processors=3,
        u_grid=[0.60, 0.70, 0.80, 0.90, 0.95],
        samples=20,
        seed=9,
    )


class TestWeightedSchedulabilityOnRealData:
    def test_rta_scores_higher_than_threshold(self, real_sweep):
        w_rta = weighted_schedulability(real_sweep, "RM-TS/light")
        w_spa = weighted_schedulability(real_sweep, "SPA1")
        assert w_rta > w_spa

    def test_scores_in_unit_interval(self, real_sweep):
        for name in real_sweep.curves:
            assert 0.0 <= weighted_schedulability(real_sweep, name) <= 1.0


class TestUtilizationGainOnRealData:
    def test_gain_positive_and_substantial(self, real_sweep):
        gain = utilization_gain(real_sweep, "RM-TS/light", "SPA1", level=0.5)
        if gain is None:
            # RM-TS/light never dropped below 50% on the grid — the gain
            # is at least the distance from SPA1's crossover to grid end.
            cross = real_sweep.crossover("SPA1", level=0.5)
            assert cross is not None
            assert real_sweep.u_grid[-1] - cross > 0.1
        else:
            assert gain > 0.1

    def test_spa1_crossover_at_its_threshold(self, real_sweep):
        cross = real_sweep.crossover("SPA1", level=0.5)
        assert cross is not None
        # SPA1 collapses right above Theta(N=12) ~ 0.714
        assert cross == pytest.approx(0.80, abs=0.11)
