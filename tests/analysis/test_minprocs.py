"""Tests for processor-count minimization."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.minprocs import compare_minimum_processors, minimum_processors
from repro.core.baselines.spa import partition_spa2
from repro.core.rmts import partition_rmts
from repro.core.task import TaskSet
from repro.taskgen.generators import TaskSetGenerator


def rmts_test(ts, m):
    return partition_rmts(ts, m, dedicate_over_bound=False).success


class TestMinimumProcessors:
    def test_single_processor_workload(self):
        ts = TaskSet.from_pairs([(1, 4), (1, 8)])
        assert minimum_processors(rmts_test, ts) == 1

    def test_utilization_lower_bound_respected(self):
        # U = 2.25 -> at least 3 processors no matter the algorithm
        ts = TaskSet.from_pairs([(3, 4)] * 3)
        m = minimum_processors(rmts_test, ts)
        assert m is not None and m >= 3

    def test_cap_returns_none(self):
        ts = TaskSet.from_pairs([(3, 4)] * 3)
        assert minimum_processors(lambda t, m: False, ts,
                                  max_processors=8) is None

    def test_matches_linear_scan(self):
        gen = TaskSetGenerator(n=10, period_model="loguniform")
        for seed in range(6):
            ts = gen.generate(u_norm=0.8, processors=3, seed=seed)
            fast = minimum_processors(rmts_test, ts, max_processors=16)
            slow = next(
                (m for m in range(1, 17) if rmts_test(ts, m)), None
            )
            assert fast == slow

    def test_rejects_bad_cap(self, harmonic_set):
        with pytest.raises(ValueError):
            minimum_processors(rmts_test, harmonic_set, max_processors=0)

    @given(st.integers(0, 2_000))
    @settings(max_examples=15, deadline=None)
    def test_acceptance_monotone_in_processors(self, seed):
        """The assumption behind the bisection: adding processors never
        turns success into failure (for the splitting algorithms)."""
        rng = np.random.default_rng(seed)
        gen = TaskSetGenerator(n=8, period_model="loguniform")
        ts = gen.generate(u_norm=float(rng.uniform(0.5, 0.9)),
                          processors=2, seed=rng)
        results = [rmts_test(ts, m) for m in range(1, 7)]
        # once True, stays True
        seen = False
        for ok in results:
            if seen:
                assert ok
            seen = seen or ok


class TestCompareTable:
    def test_table_shape(self, harmonic_set):
        table = compare_minimum_processors(
            {
                "RM-TS": rmts_test,
                "SPA2": lambda ts, m: partition_spa2(ts, m).success,
            },
            harmonic_set,
        )
        assert len(table) == 2
        assert table.column("algorithm") == ["RM-TS", "SPA2"]

    def test_rmts_never_needs_more_than_spa2(self):
        gen = TaskSetGenerator(n=9, period_model="loguniform")
        for seed in range(6):
            ts = gen.generate(u_norm=0.8, processors=3, seed=seed)
            m_rmts = minimum_processors(rmts_test, ts)
            m_spa2 = minimum_processors(
                lambda t, m: partition_spa2(t, m).success, ts
            )
            assert m_rmts is not None and m_spa2 is not None
            assert m_rmts <= m_spa2