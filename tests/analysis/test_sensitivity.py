"""Tests for sensitivity analysis (scaling factors, overhead tolerance)."""

import pytest

from repro.analysis.sensitivity import (
    critical_scaling_factor,
    max_cost_for,
    overhead_tolerance,
    partition_scaling_factor,
)
from repro.core.rmts import partition_rmts
from repro.core.task import Subtask, Task, TaskSet


def subs(taskset):
    return [Subtask.whole(t) for t in taskset]


class TestCriticalScalingFactor:
    def test_exact_boundary_harmonic(self):
        # U = 0.5 harmonic -> exactly factor 2 fits (U = 1 harmonic works)
        ts = TaskSet.from_pairs([(1, 4), (1, 8), (1, 16)])
        f = critical_scaling_factor(subs(ts))
        assert f == pytest.approx(16.0 / 7.0, rel=1e-3)

    def test_saturated_set_factor_one(self):
        ts = TaskSet.from_pairs([(2, 4), (2, 8), (4, 16)])
        assert critical_scaling_factor(subs(ts)) == pytest.approx(1.0, rel=1e-4)

    def test_unschedulable_set_below_one(self):
        ts = TaskSet.from_pairs([(3, 4), (3, 8)])
        f = critical_scaling_factor(subs(ts))
        assert 0 < f < 1.0

    def test_empty_processor(self):
        assert critical_scaling_factor([]) == 100.0


class TestMaxCostFor:
    def test_single_task_bounded_by_deadline(self):
        ts = TaskSet.from_pairs([(1, 10)])
        assert max_cost_for(subs(ts), 0) == pytest.approx(10.0)

    def test_low_priority_task_growth(self):
        # (2,4) fixed; (C,16) can grow until R hits 16: C + ceil(R/4)*2 = 16
        # => C = 16 - 4*2 = 8.
        ts = TaskSet.from_pairs([(2, 4), (1, 16)])
        c_max = max_cost_for(subs(ts), 1)
        assert c_max == pytest.approx(8.0, rel=1e-6)

    def test_growth_limited_by_lower_priority_task(self):
        # growing the (1,4) task is limited by the (4,16) task's deadline
        ts = TaskSet.from_pairs([(1, 4), (4, 16)])
        c_max = max_cost_for(subs(ts), 0)
        # with C0 = 3: R1 = 4 + 4*3 = 16 <= 16 exactly
        assert c_max == pytest.approx(3.0, rel=1e-6)


class TestPartitionScalingFactor:
    def test_accepted_partition_has_factor_ge_one(self, harmonic_set):
        part = partition_rmts(harmonic_set, 2)
        assert part.success
        assert partition_scaling_factor(part) >= 1.0 - 1e-6

    def test_tight_partition_is_exactly_one(self, tight_harmonic_set):
        part = partition_rmts(tight_harmonic_set, 2)
        assert part.success
        f = partition_scaling_factor(part, tolerance=1e-5)
        # MaxSplit filled one processor to a bottleneck -> factor ~1
        assert f == pytest.approx(1.0, abs=1e-3)


class TestOverheadTolerance:
    def test_slack_rich_partition_tolerates_overhead(self, harmonic_set):
        part = partition_rmts(harmonic_set, 2)
        tol = overhead_tolerance(part, horizon=96.0, max_overhead=2.0,
                                 tolerance=1e-2)
        assert tol > 0.0

    def test_saturated_partition_tolerates_nothing(self, tight_harmonic_set):
        part = partition_rmts(tight_harmonic_set, 2)
        tol = overhead_tolerance(part, horizon=96.0, max_overhead=1.0,
                                 tolerance=1e-2)
        assert tol == pytest.approx(0.0, abs=1e-2)
