"""The CI pipeline definitions must match the documented invocations.

Tier-1, lint and mypy are documented in CONTRIBUTING.md and asserted
here as exact command strings, so the workflows, the docs and the local
developer commands cannot drift apart silently.  Assertions are
text-based (a YAML parser is only used for structure when available) so
this test runs in environments without PyYAML.
"""

import os
from pathlib import Path

import pytest

pytestmark = pytest.mark.ci

ROOT = Path(__file__).resolve().parents[2]
CI = ROOT / ".github" / "workflows" / "ci.yml"
NIGHTLY = ROOT / ".github" / "workflows" / "nightly.yml"

#: The documented tier-1 / gate commands (ROADMAP.md, CONTRIBUTING.md).
TIER1_CMD = "PYTHONPATH=src python -m pytest -x -q"
LINT_CMD = "PYTHONPATH=src python -m repro lint"
MYPY_CMD = "mypy --config-file pyproject.toml"
PERF_SMOKE_CMD = "PYTHONPATH=src python -m pytest -q -m perf_smoke"
DRIFT_CMD = "python scripts/check_bench_drift.py"
FLOW_BENCH_CMD = "python -m repro.lint.flow.bench_flow"
LINT_BENCH_CMD = (
    "PYTHONPATH=src python -m repro lint --bench-json fresh/BENCH_lint.json"
)
KERNEL_SUITE_CMD = "PYTHONPATH=src python -m pytest -q -m kernel"
KERNEL_EQUIV_CMD = (
    "PYTHONPATH=src python -m repro.perf.bench_kernel_batch "
    "--equivalence-only --samples 25 --seed 0"
)
KERNEL_BENCH_CMD = (
    "PYTHONPATH=src python -m repro.perf.bench_kernel_batch "
    "--samples 100 --repeats 5 --seed 0 "
    "--out fresh/BENCH_kernel_batch.json"
)


def test_workflow_files_exist():
    assert CI.is_file(), "missing .github/workflows/ci.yml"
    assert NIGHTLY.is_file(), "missing .github/workflows/nightly.yml"


def test_ci_runs_the_documented_tier1_commands():
    text = CI.read_text()
    assert TIER1_CMD in text
    assert LINT_CMD in text
    assert MYPY_CMD in text


def test_ci_matrix_covers_supported_pythons_with_pip_cache():
    text = CI.read_text()
    for version in ('"3.10"', '"3.11"', '"3.12"'):
        assert version in text, f"CI matrix missing {version}"
    assert "cache: pip" in text
    assert "actions/checkout@v4" in text
    assert "actions/setup-python@v5" in text
    assert "pip install -e .[test]" in text


def test_ci_triggers_on_push_and_pull_request():
    text = CI.read_text()
    assert "pull_request" in text
    assert "push" in text


def test_ci_flow_job_gates_and_uploads_sarif():
    text = CI.read_text()
    assert "flow:" in text, "CI must have a dedicated flow-analysis job"
    for code in ("R9", "R10", "R11", "R12", "R13"):
        assert f"--select {code}" in text
    assert "--format sarif" in text
    assert "actions/upload-artifact@v4" in text
    assert "flow.sarif" in text


def test_ci_kernel_matrix_covers_backends_and_numpy_generations():
    text = CI.read_text()
    assert "kernel-matrix:" in text, "CI must have a kernel-matrix job"
    assert KERNEL_SUITE_CMD in text
    assert KERNEL_EQUIV_CMD in text
    # Old and new numpy generations; 1.21 has no 3.12 wheels, so the
    # matrix uses explicit includes instead of a full product.
    assert '"1.21.*"' in text
    assert '"1.26.*"' in text
    assert '"2.*"' in text
    assert 'pip install "numpy==${{ matrix.numpy-version }}"' in text
    # One leg must prove the no-compiler fallback path.
    assert "REPRO_KERNEL_NATIVE" in text


def test_ci_guards_against_committed_bytecode():
    text = CI.read_text()
    assert "git ls-files -- src tests" in text
    assert "__pycache__" in text


def test_nightly_regenerates_lint_and_flow_benchmarks():
    text = NIGHTLY.read_text()
    assert LINT_BENCH_CMD in text
    assert FLOW_BENCH_CMD in text
    assert "--out fresh/BENCH_flow.json" in text


def test_nightly_flow_params_match_committed_flow_config():
    import json

    artifact = ROOT / "benchmarks" / "results" / "BENCH_flow.json"
    if not artifact.is_file():
        pytest.skip("no committed BENCH_flow.json")
    config = json.loads(artifact.read_text())["config"]
    flow_line = next(
        line for line in NIGHTLY.read_text().splitlines()
        if FLOW_BENCH_CMD in line
    )
    assert f"--repeats {config['repeats']}" in flow_line


def test_committed_flow_benchmark_meets_the_speedup_contract():
    import json

    artifact = ROOT / "benchmarks" / "results" / "BENCH_flow.json"
    if not artifact.is_file():
        pytest.skip("no committed BENCH_flow.json")
    payload = json.loads(artifact.read_text())
    assert payload["warm_speedup_ok"] is True
    assert payload["config"]["min_speedup"] >= 5.0
    assert payload["warm"]["cache_misses"] == 0


def test_nightly_regenerates_benchmarks_with_baseline_parameters():
    text = NIGHTLY.read_text()
    assert PERF_SMOKE_CMD in text
    # committed BENCH_sweep.json config: samples=100, jobs=4, repeats=3
    assert ("python -m repro.perf.bench_sweep "
            "--samples 100 --jobs 4 --repeats 3 --seed 0") in text
    # committed BENCH_store.json uses the module defaults
    assert "python -m repro.store.bench_store" in text
    assert "python -m repro.service.loadgen" in text
    # committed BENCH_churn.json config: processors=4, horizon=60, jobs=2
    assert ("python -m repro.cluster.bench_churn "
            "--processors 4 --horizon 60 --seed 0 --jobs 2") in text


def test_nightly_regenerates_search_benchmark():
    text = NIGHTLY.read_text()
    assert ("python -m repro.search.bench_search "
            "--seed 0 --jobs 2 --out fresh/BENCH_search.json") in text


def test_nightly_search_params_match_committed_search_config():
    import json

    artifact = ROOT / "benchmarks" / "results" / "BENCH_search.json"
    if not artifact.is_file():
        pytest.skip("no committed BENCH_search.json")
    config = json.loads(artifact.read_text())["config"]
    search_line = next(
        line for line in NIGHTLY.read_text().splitlines()
        if "repro.search.bench_search" in line
    )
    assert f"--seed {config['seed']}" in search_line
    assert f"--jobs {config['jobs']}" in search_line


def test_committed_search_benchmark_meets_the_efficiency_contract():
    import json

    artifact = ROOT / "benchmarks" / "results" / "BENCH_search.json"
    if not artifact.is_file():
        pytest.skip("no committed BENCH_search.json")
    payload = json.loads(artifact.read_text())
    efficiency = payload["efficiency"]
    assert efficiency["min_required"] >= 3.0
    assert efficiency["speedup_vs_grid"] >= efficiency["min_required"]
    assert payload["frontier"]["interval_half_width"] <= 0.02
    determinism = payload["determinism"]
    assert determinism["jobs_invariant"] is True
    assert determinism["resume"]["result_identical"] is True
    assert determinism["witness_replay_confirmed"] is True


def test_nightly_regenerates_kernel_batch_benchmark():
    text = NIGHTLY.read_text()
    assert KERNEL_BENCH_CMD in text


def test_nightly_kernel_params_match_committed_kernel_config():
    import json

    artifact = ROOT / "benchmarks" / "results" / "BENCH_kernel_batch.json"
    if not artifact.is_file():
        pytest.skip("no committed BENCH_kernel_batch.json")
    config = json.loads(artifact.read_text())["config"]
    kernel_line = next(
        line for line in NIGHTLY.read_text().splitlines()
        if "repro.perf.bench_kernel_batch" in line
    )
    assert f"--samples {config['samples']}" in kernel_line
    assert f"--repeats {config['repeats']}" in kernel_line
    assert f"--seed {config['seed']}" in kernel_line


def test_committed_kernel_benchmark_meets_the_speedup_contract():
    import json

    artifact = ROOT / "benchmarks" / "results" / "BENCH_kernel_batch.json"
    if not artifact.is_file():
        pytest.skip("no committed BENCH_kernel_batch.json")
    payload = json.loads(artifact.read_text())
    contract = payload["contract"]
    assert contract["speedup_ok"] is True
    assert contract["min_speedup"] >= 10.0
    assert contract["backend"] == "kernel-numpy"
    equivalence = payload["equivalence"]
    assert equivalence["verdicts_identical"] is True
    assert equivalence["counters_identical"] is True
    # The committed artifact must match the committed sweep shape.
    config = payload["config"]
    assert (config["processors"], config["n"]) == (8, 24)
    assert config["u_grid_points"] == 19


def test_nightly_gates_on_bench_drift_and_uploads_artifacts():
    text = NIGHTLY.read_text()
    assert DRIFT_CMD in text
    assert "--baseline benchmarks/results" in text
    assert "python -m repro store verify --artifacts benchmarks/results" in text
    assert "actions/upload-artifact@v4" in text
    assert "workflow_dispatch" in text
    assert "schedule" in text


def test_nightly_exercises_the_observability_layer():
    text = NIGHTLY.read_text()
    assert "python -m repro sweep" in text and "--profile" in text
    assert "python -m repro obs summarize" in text


def test_nightly_sweep_params_match_committed_sweep_config():
    # The regeneration command must keep matching the committed artifact's
    # recorded config, else the drift gate compares apples to oranges.
    import json

    artifact = ROOT / "benchmarks" / "results" / "BENCH_sweep.json"
    if not artifact.is_file():
        pytest.skip("no committed BENCH_sweep.json")
    config = json.loads(artifact.read_text())["config"]
    text = NIGHTLY.read_text()
    assert f"--samples {config['samples']}" in text
    assert f"--jobs {config['jobs']}" in text
    assert f"--repeats {config['repeats']}" in text
    assert f"--seed {config['seed']}" in text


def test_nightly_churn_params_match_committed_churn_config():
    import json

    artifact = ROOT / "benchmarks" / "results" / "BENCH_churn.json"
    if not artifact.is_file():
        pytest.skip("no committed BENCH_churn.json")
    config = json.loads(artifact.read_text())["config"]
    text = NIGHTLY.read_text()
    churn_line = next(
        line for line in text.splitlines()
        if "repro.cluster.bench_churn" in line
    )
    assert f"--processors {config['processors']}" in churn_line
    assert f"--horizon {config['horizon']}" in churn_line
    assert f"--seed {config['seed']}" in churn_line
    assert f"--jobs {config['jobs']}" in churn_line


def test_workflows_parse_as_yaml_when_parser_available():
    yaml = pytest.importorskip("yaml")
    for path in (CI, NIGHTLY):
        doc = yaml.safe_load(path.read_text())
        assert isinstance(doc, dict)
        assert "jobs" in doc
        for job in doc["jobs"].values():
            assert job.get("runs-on") == "ubuntu-latest"
            assert isinstance(job.get("steps"), list)


def test_contributing_documents_the_same_commands():
    contributing = ROOT / "CONTRIBUTING.md"
    assert contributing.is_file(), "missing CONTRIBUTING.md"
    text = contributing.read_text()
    for cmd in (TIER1_CMD, LINT_CMD, MYPY_CMD, KERNEL_SUITE_CMD):
        assert cmd in text, f"CONTRIBUTING.md must document: {cmd}"


def test_scripts_wrapper_is_what_nightly_invokes():
    script = ROOT / "scripts" / "check_bench_drift.py"
    assert script.is_file()
    assert os.access(script, os.R_OK)
    assert DRIFT_CMD in NIGHTLY.read_text()
