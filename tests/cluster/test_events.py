"""Event-timeline determinism and the churn configuration contract."""

import pytest

from repro.cluster.events import (
    ChurnConfig,
    build_event_timeline,
    churn_config_key,
    tenant_taskset,
)

pytestmark = pytest.mark.churn


class TestChurnConfig:
    def test_defaults_validate(self):
        ChurnConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"processors": 0},
            {"tasks_per_set": 0},
            {"tasks_per_set": 100},
            {"arrival_model": "bursty"},
            {"lifetime_model": "weibull"},
            {"arrival_model": "trace"},  # no trace rows
            {"arrival_rate": 0.0},
            {"u_set": -0.1},
            {"k": -1},
            {"max_wait": 0.0},
            {"tmax": 20_000.0},  # int64 tid envelope
            {"horizon": 10**6 + 1},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ChurnConfig(**kwargs)

    def test_offered_load_littles_law(self):
        config = ChurnConfig(
            processors=4, arrival_rate=0.02, mean_lifetime=400.0, u_set=0.5
        )
        assert config.offered_load() == pytest.approx(1.0)


class TestTimeline:
    def test_deterministic_and_balanced(self):
        config = ChurnConfig(horizon=50)
        a = build_event_timeline(config)
        b = build_event_timeline(config)
        assert a == b
        assert len(a) == 100
        assert sum(1 for e in a if e.kind == "arrival") == 50

    def test_sorted_with_departure_priority_on_ties(self):
        config = ChurnConfig(horizon=30)
        events = build_event_timeline(config)
        keys = [e.sort_key for e in events]
        assert keys == sorted(keys)
        # Departures sort before arrivals at equal times.
        assert ChurnConfig().horizon  # sanity on defaults
        from repro.cluster.events import ChurnEvent

        dep = ChurnEvent(time=5.0, kind="departure", tenant=9)
        arr = ChurnEvent(time=5.0, kind="arrival", tenant=1)
        assert dep.sort_key < arr.sort_key

    def test_each_tenant_arrives_then_departs(self):
        config = ChurnConfig(horizon=20)
        first = {}
        for event in build_event_timeline(config):
            if event.tenant not in first:
                assert event.kind == "arrival"
                first[event.tenant] = event.time

    def test_trace_model_uses_rows(self):
        config = ChurnConfig(
            arrival_model="trace",
            trace=((1.0, 10.0), (2.0, 0.0)),  # second falls back to model
            horizon=1,
        )
        events = build_event_timeline(config)
        arrivals = [e for e in events if e.kind == "arrival"]
        assert [e.time for e in arrivals] == [1.0, 2.0]
        departures = {e.tenant: e.time for e in events if e.kind == "departure"}
        assert departures[0] == 11.0
        assert departures[1] > 2.0

    @pytest.mark.parametrize("model", ["exponential", "pareto", "fixed"])
    def test_lifetime_models_positive(self, model):
        config = ChurnConfig(horizon=40, lifetime_model=model)
        events = build_event_timeline(config)
        arrive = {e.tenant: e.time for e in events if e.kind == "arrival"}
        for e in events:
            if e.kind == "departure":
                assert e.time > arrive[e.tenant]

    def test_fixed_lifetime_exact(self):
        config = ChurnConfig(
            horizon=5, lifetime_model="fixed", mean_lifetime=7.0
        )
        events = build_event_timeline(config)
        arrive = {e.tenant: e.time for e in events if e.kind == "arrival"}
        for e in events:
            if e.kind == "departure":
                assert e.time == arrive[e.tenant] + 7.0


class TestConfigKeyAndTasksets:
    def test_key_stable_and_parameter_sensitive(self):
        base = ChurnConfig()
        assert churn_config_key(base) == churn_config_key(ChurnConfig())
        assert churn_config_key(base) != churn_config_key(
            ChurnConfig(seed=1)
        )
        assert churn_config_key(base) != churn_config_key(
            ChurnConfig(policy="compact")
        )
        assert churn_config_key(base) != churn_config_key(
            ChurnConfig(arrival_rate=0.021)
        )

    def test_tenant_taskset_deterministic_and_independent(self):
        config = ChurnConfig(tasks_per_set=4, u_set=0.5)
        a = tenant_taskset(config, 3)
        b = tenant_taskset(config, 3)
        assert [(t.cost, t.period) for t in a] == [
            (t.cost, t.period) for t in b
        ]
        assert a.total_utilization == pytest.approx(0.5, abs=1e-9)
        other = tenant_taskset(config, 4)
        assert [(t.cost, t.period) for t in a] != [
            (t.cost, t.period) for t in other
        ]
