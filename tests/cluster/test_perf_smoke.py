"""Opt-in canary for the churn benchmark pipeline (pytest -m perf_smoke)."""

import pytest

from repro.cluster.bench_churn import BENCH_POLICIES, run_bench_churn

pytestmark = [pytest.mark.perf_smoke, pytest.mark.churn]


def test_bench_churn_quick(tmp_path):
    out = str(tmp_path / "BENCH_churn.json")
    report = run_bench_churn(horizon=12, jobs=2, out=out)
    assert report["kind"] == "churn_bench"
    assert set(report["grid"]) == set(BENCH_POLICIES)
    assert report["determinism"]["jobs_invariant"] is True
    assert report["determinism"]["resume"]["metrics_identical"] is True
    for rows in report["grid"].values():
        assert len(rows) == 3
        for row in rows:
            assert 0.0 <= row["rejection_ratio"] <= 1.0
    import json

    with open(out) as fh:
        payload = json.load(fh)
    assert payload["kind"] == "churn_bench"
    assert "provenance" in payload
