"""Policy registry, admission rollback, and migration-budget bounds."""

import pytest

from repro.analysis.algorithms import PARTITIONERS
from repro.cluster.events import ChurnConfig
from repro.cluster.policies import CHURN_POLICIES, make_policy
from repro.cluster.simulator import simulate_churn
from repro.cluster.state import ClusterState

pytestmark = pytest.mark.churn


class TestRegistry:
    def test_registry_spans_partitioners(self):
        for name in PARTITIONERS:
            assert f"repart:{name}" in CHURN_POLICIES

    def test_incremental_and_churn_aware_variants_present(self):
        for name in ("ff-rta", "bf-rta", "wf-rta", "bf-rejoin", "compact"):
            assert name in CHURN_POLICIES

    def test_make_policy_sets_name_and_liveness(self):
        policy = make_policy(ChurnConfig(policy="compact"))
        assert policy.name == "compact"
        assert policy.live
        repart = make_policy(ChurnConfig(policy="repart:rmts"))
        assert not repart.live

    def test_unknown_policy_lists_known_names(self):
        with pytest.raises(ValueError, match="ff-rta"):
            make_policy(ChurnConfig(policy="round-robin"))

    @pytest.mark.parametrize("name", sorted(CHURN_POLICIES))
    def test_every_policy_simulates(self, name):
        config = ChurnConfig(
            policy=name, processors=2, horizon=6, arrival_rate=0.02
        )
        result = simulate_churn(config)
        assert result.events_total == 12
        assert result.metrics.arrivals == 6
        assert (
            result.metrics.admitted
            + result.metrics.rejected
            + result.metrics.queued
            >= result.metrics.arrivals - result.metrics.readmitted
        )


class TestFitAdmission:
    def _setup(self, policy_name, processors=1):
        config = ChurnConfig(policy=policy_name, processors=processors)
        policy = make_policy(config)
        state = ClusterState.fresh(config, live=policy.live)
        return policy, state

    def test_rejection_rolls_back_bit_exact(self):
        policy, state = self._setup("ff-rta", processors=1)
        assert policy.admit(state, 0, rejoin=False) is not None
        before_util = [p._util for p in state.processors]
        before_subtasks = [list(p.subtasks) for p in state.processors]
        # One processor at u_set=0.5 cannot take many more tenants; find
        # a tenant that gets rejected and check nothing changed.
        rejected = None
        for tenant in range(1, 10):
            if policy.admit(state, tenant, rejoin=False) is None:
                rejected = tenant
                break
            before_util = [p._util for p in state.processors]
            before_subtasks = [list(p.subtasks) for p in state.processors]
        assert rejected is not None
        assert [p._util for p in state.processors] == before_util
        assert [list(p.subtasks) for p in state.processors] == before_subtasks
        assert rejected not in state.residents

    def test_admission_outcome_ops_replay(self):
        policy, state = self._setup("bf-rta", processors=2)
        outcome = policy.admit(state, 0, rejoin=False)
        assert outcome is not None and outcome.migrations == 0
        replayed = ClusterState.fresh(state.config, live=True)
        for op in outcome.ops:
            replayed.apply_op(op)
        assert replayed.hosts == state.hosts
        assert replayed.utilization() == state.utilization()


class TestMigrationBudget:
    @pytest.mark.parametrize("k", [0, 1, 2, 3])
    def test_compact_respects_k_per_departure(self, k):
        config = ChurnConfig(
            policy="compact", processors=4, horizon=30,
            arrival_rate=0.018, k=k,
        )
        result = simulate_churn(config)
        counts = result.metrics.migration_counts
        from repro.cluster.simulator import MIGRATION_BOUNDS

        for i, bound in enumerate(MIGRATION_BOUNDS):
            if bound > k:
                assert counts[i] == 0, (
                    f"departure event migrated more than k={k}"
                )
        assert counts[len(MIGRATION_BOUNDS)] == 0  # overflow bin

    def test_compact_zero_budget_never_migrates(self):
        config = ChurnConfig(
            policy="compact", processors=4, horizon=30,
            arrival_rate=0.018, k=0,
        )
        assert simulate_churn(config).metrics.migrations == 0

    def test_repartition_budget_zero_freezes_placement(self):
        # With k=0, a repartitioner can only admit placements that keep
        # every existing task exactly where it was.
        config = ChurnConfig(
            policy="repart:rmts", processors=4, horizon=20,
            arrival_rate=0.018, k=0,
        )
        assert simulate_churn(config).metrics.migrations == 0
