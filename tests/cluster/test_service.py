"""ClusterCoordinator unit tests with an injectable wall clock."""

import pytest

from repro.cluster.events import ChurnConfig
from repro.cluster.service import (
    ClusterCoordinator,
    admit_async,
    depart_async,
)
from repro.core.task import Task, TaskSet
from repro.service.validation import RequestValidationError

pytestmark = pytest.mark.churn


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def small_set(u=0.3, n=3, period=50.0):
    cost = u * period / n
    return TaskSet(
        Task(cost=cost, period=period, tid=i, name=f"job{i}")
        for i in range(n)
    )


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def coordinator(clock):
    config = ChurnConfig(
        processors=2, policy="bf-rejoin", k=2, queue_limit=2, max_wait=60.0
    )
    return ClusterCoordinator(config, clock=clock)


class TestAdmission:
    def test_admit_assigns_tenants_and_places(self, coordinator):
        first = coordinator.admit(small_set())
        second = coordinator.admit(small_set())
        assert first["status"] == "admitted"
        assert (first["tenant"], second["tenant"]) == (0, 1)
        assert first["n"] == 3
        assert len(first["placement"]) == 3
        assert second["utilization"] > first["utilization"]

    def test_overload_queues_then_rejects(self, coordinator):
        statuses = [
            coordinator.admit(small_set(u=0.8))["status"] for _ in range(6)
        ]
        assert statuses[0] == "admitted"
        assert "queued" in statuses
        assert statuses[-1] == "rejected"
        snap = coordinator.snapshot()
        assert len(snap["queued"]) == coordinator.config.queue_limit

    def test_oversized_set_rejected_with_validation_error(self, coordinator):
        huge = TaskSet(
            Task(cost=0.001, period=50.0, tid=i) for i in range(100)
        )
        with pytest.raises(RequestValidationError):
            coordinator.admit(huge)

    def test_period_beyond_cluster_cap_rejected(self, coordinator):
        slow = TaskSet([Task(cost=1.0, period=20_000.0, tid=0)])
        with pytest.raises(RequestValidationError) as exc:
            coordinator.admit(slow)
        assert "period" in exc.value.errors[0]["field"]


class TestDeparture:
    def test_depart_readmits_from_queue(self, coordinator):
        big = coordinator.admit(small_set(u=1.2, n=6))
        assert big["status"] == "admitted"
        queued = coordinator.admit(small_set(u=0.9, n=4))
        assert queued["status"] == "queued"
        body = coordinator.depart(big["tenant"])
        assert body["status"] == "departed"
        assert body["pieces_removed"] >= 6
        assert [r["tenant"] for r in body["readmitted"]] == [
            queued["tenant"]
        ]
        snap = coordinator.snapshot()
        assert snap["residents"] == [queued["tenant"]]
        assert snap["queued"] == []

    def test_depart_queued_tenant_dequeues(self, coordinator):
        coordinator.admit(small_set(u=1.2, n=6))
        queued = coordinator.admit(small_set(u=0.9, n=4))["tenant"]
        assert coordinator.depart(queued)["status"] == "dequeued"
        assert coordinator.snapshot()["queued"] == []

    def test_depart_unknown_tenant(self, coordinator):
        assert coordinator.depart(41)["status"] == "unknown"


class TestQueueExpiry:
    def test_waiters_expire_after_max_wait(self, coordinator, clock):
        coordinator.admit(small_set(u=1.2, n=6))
        assert coordinator.admit(small_set(u=0.9, n=4))["status"] == "queued"
        clock.now = coordinator.config.max_wait + 1.0
        snap = coordinator.snapshot()
        assert snap["queued"] == []
        assert snap["queue_timeouts"] == 1

    def test_waiters_survive_until_max_wait(self, coordinator, clock):
        coordinator.admit(small_set(u=1.2, n=6))
        coordinator.admit(small_set(u=0.9, n=4))
        clock.now = coordinator.config.max_wait  # not strictly past it
        assert len(coordinator.snapshot()["queued"]) == 1


class TestSnapshot:
    def test_snapshot_shape(self, coordinator):
        coordinator.admit(small_set())
        snap = coordinator.snapshot()
        assert snap["policy"] == "bf-rejoin"
        assert snap["processors"] == 2
        assert snap["k"] == 2
        assert snap["residents"] == [0]
        assert snap["tenants_seen"] == 1
        assert len(snap["per_processor_utilization"]) == 2
        # The headline utilization is normalized per processor.
        assert snap["utilization"] * snap["processors"] == pytest.approx(
            sum(snap["per_processor_utilization"]), abs=1e-5
        )


class TestAsyncWrappers:
    def test_async_admit_and_depart(self, coordinator):
        import asyncio

        async def scenario():
            body = await admit_async(coordinator, small_set())
            gone = await depart_async(coordinator, body["tenant"])
            return body, gone

        body, gone = asyncio.run(scenario())
        assert body["status"] == "admitted"
        assert gone["status"] == "departed"
