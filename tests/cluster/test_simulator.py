"""The determinism acceptance criteria: jobs invariance, byte-identical
journals, and bit-identical kill/resume."""

import json

import pytest

from repro.cluster.events import ChurnConfig, churn_config_key
from repro.cluster.simulator import (
    ChurnInterrupted,
    ChurnMetrics,
    simulate_churn,
)
from repro.cluster.sweep import grid_by_policy, run_churn_grid
from repro.store.backend import ResultStore

pytestmark = pytest.mark.churn

_POLICIES = ["ff-rta", "bf-rejoin", "compact"]
_RATES = [0.014, 0.018]


def _config(**kwargs):
    base = dict(processors=4, horizon=25, arrival_rate=0.018,
                policy="compact")
    base.update(kwargs)
    return ChurnConfig(**base)


class TestMetrics:
    def test_state_roundtrip_exact(self):
        result = simulate_churn(_config())
        state = result.metrics.as_state()
        clone = ChurnMetrics.from_state(json.loads(json.dumps(state)))
        assert clone.as_state() == state
        assert clone.slo_summary() == result.metrics.slo_summary()

    def test_derived_slos(self):
        metrics = ChurnMetrics()
        assert metrics.rejection_ratio() == 0.0
        assert metrics.steady_state_utilization() == 0.0
        assert metrics.migrations_per_departure() == 0.0
        metrics.arrivals = 10
        metrics.rejected = 2
        metrics.queue_timeouts = 1
        metrics.departures = 4
        metrics.migrations = 6
        assert metrics.rejection_ratio() == pytest.approx(0.3)
        assert metrics.migrations_per_departure() == pytest.approx(1.5)

    def test_time_weighted_utilization(self):
        metrics = ChurnMetrics()
        metrics.advance_time(10.0, 0.0)   # [0, 10) at utilization 0
        metrics.advance_time(20.0, 0.5)   # [10, 20) at utilization 0.5
        metrics.advance_time(20.0, 0.9)   # no time passes
        assert metrics.steady_state_utilization() == pytest.approx(0.25)


class TestJobsInvariance:
    def test_grid_identical_at_any_jobs_level(self):
        base = _config(horizon=15)
        serial = run_churn_grid(base, _POLICIES, _RATES, jobs=1)
        parallel = run_churn_grid(base, _POLICIES, _RATES, jobs=2)
        assert serial == parallel
        assert set(grid_by_policy(serial)) == set(_POLICIES)


class TestJournal:
    def test_journal_byte_identical_across_runs(self, tmp_path):
        config = _config(horizon=15)
        namespace = "churn:" + churn_config_key(config)
        blobs = []
        for name in ("a.db", "b.db"):
            path = str(tmp_path / name)
            simulate_churn(config, store=path)
            with ResultStore(path) as store:
                blobs.append(
                    json.dumps(
                        store.get_namespace(namespace), sort_keys=True
                    )
                )
        assert blobs[0] == blobs[1]

    def test_journal_records_have_replayable_shape(self, tmp_path):
        config = _config(horizon=8)
        path = str(tmp_path / "j.db")
        result = simulate_churn(config, store=path)
        with ResultStore(path) as store:
            journal = store.get_namespace(result.namespace)
        assert len(journal) == result.events_total
        record = journal["0"]
        assert set(record) == {
            "time", "kind", "tenant", "ops", "queue", "metrics"
        }
        assert journal[str(result.events_total - 1)]["metrics"] == (
            result.metrics.as_state()
        )


class TestKillResume:
    @pytest.mark.parametrize("policy", ["compact", "repart:rmts"])
    def test_resume_is_bit_identical(self, policy, tmp_path):
        config = _config(policy=policy, horizon=12)
        full = simulate_churn(config)
        path = str(tmp_path / "kill.db")
        cutoff = full.events_total // 2
        with pytest.raises(ChurnInterrupted) as exc:
            simulate_churn(config, store=path, max_new_events=cutoff)
        assert exc.value.completed == cutoff
        assert exc.value.total == full.events_total
        progress = {}
        resumed = simulate_churn(
            config, store=path, resume=True, progress=progress
        )
        assert progress["events_resumed"] == cutoff
        assert progress["events_computed"] == full.events_total - cutoff
        assert resumed.metrics.as_state() == full.metrics.as_state()

    def test_resumed_journal_matches_uninterrupted_journal(self, tmp_path):
        config = _config(horizon=12)
        namespace = "churn:" + churn_config_key(config)
        straight = str(tmp_path / "straight.db")
        simulate_churn(config, store=straight)
        killed = str(tmp_path / "killed.db")
        with pytest.raises(ChurnInterrupted):
            simulate_churn(config, store=killed, max_new_events=5)
        simulate_churn(config, store=killed, resume=True)
        blobs = []
        for path in (straight, killed):
            with ResultStore(path) as store:
                blobs.append(
                    json.dumps(
                        store.get_namespace(namespace), sort_keys=True
                    )
                )
        assert blobs[0] == blobs[1]

    def test_resume_of_complete_run_computes_nothing(self, tmp_path):
        config = _config(horizon=8)
        path = str(tmp_path / "done.db")
        first = simulate_churn(config, store=path)
        progress = {}
        again = simulate_churn(
            config, store=path, resume=True, progress=progress
        )
        assert progress["events_computed"] == 0
        assert progress["events_resumed"] == first.events_total
        assert again.metrics.as_state() == first.metrics.as_state()
