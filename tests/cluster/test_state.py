"""Cluster task identity and the journaled op vocabulary."""

import pytest

from repro.cluster.events import ChurnConfig, tenant_taskset
from repro.cluster.state import (
    ClusterState,
    cluster_tasks,
    cluster_tid,
    decode_tid,
)

pytestmark = pytest.mark.churn


class TestClusterTid:
    def test_roundtrip(self):
        tid = cluster_tid(123.456789, tenant=42, local=7)
        assert decode_tid(tid) == (42, 7)

    def test_rm_order_across_tenants(self):
        # Shorter period wins regardless of tenant index.
        assert cluster_tid(10.0, 999, 0) < cluster_tid(11.0, 0, 0)
        # Equal periods tie-break by arrival order, then local index.
        assert cluster_tid(10.0, 0, 5) < cluster_tid(10.0, 1, 0)
        assert cluster_tid(10.0, 3, 0) < cluster_tid(10.0, 3, 1)

    def test_int64_envelope(self):
        # Largest encodable tid must fit numpy's int64 priority arrays.
        assert cluster_tid(10_000.0, 10**6 - 1, 99) < 2**63

    def test_tenant_range_validated(self):
        with pytest.raises(ValueError):
            cluster_tid(10.0, 10**6, 0)
        with pytest.raises(ValueError):
            cluster_tid(10.0, -1, 0)

    def test_cluster_tasks_preserve_shape(self):
        config = ChurnConfig(tasks_per_set=3)
        ts = tenant_taskset(config, 5)
        tasks = cluster_tasks(5, ts)
        assert [t.cost for t in tasks] == [t.cost for t in ts]
        assert [t.period for t in tasks] == [t.period for t in ts]
        assert [decode_tid(t.tid) for t in tasks] == [
            (5, t.tid) for t in ts
        ]
        assert tasks[0].name == "t5.0"


class TestClusterStateOps:
    def _live(self, processors=2):
        return ClusterState.fresh(
            ChurnConfig(processors=processors), live=True
        )

    def test_place_and_withdraw_roundtrip(self):
        state = self._live()
        tasks = state.tasks_of(0)
        hosts = [[i % 2] for i in range(len(tasks))]
        state.apply_place(0, hosts)
        assert state.resident_order() == [0]
        assert state.utilization() > 0.0
        assert state.hosts[(0, 0)] == (0,)
        removed = state.apply_withdraw(0)
        assert removed == len(tasks)
        assert state.resident_order() == []
        assert state.utilization() == 0.0
        assert not state.hosts

    def test_withdraw_unknown_tenant_is_noop(self):
        state = self._live()
        assert state.apply_withdraw(77) == 0

    def test_migrate_moves_one_task(self):
        state = self._live()
        tasks = state.tasks_of(0)
        state.apply_place(0, [[0] for _ in tasks])
        before_src = state.processors[0].utilization
        state.apply_migrate(0, 1, 0, 1)
        assert state.hosts[(0, 1)] == (1,)
        assert state.processors[0].utilization < before_src
        assert state.processors[1].utilization > 0.0

    def test_place_host_count_mismatch_rejected(self):
        state = self._live()
        with pytest.raises(ValueError):
            state.apply_place(0, [[0]])  # tasks_per_set defaults to 4

    def test_install_is_repart_only(self):
        live = self._live()
        with pytest.raises(ValueError):
            live.apply_install([], {})
        state = ClusterState.fresh(ChurnConfig(processors=2), live=False)
        tasks = state.tasks_of(0)
        host_map = {f"0:{i}": [i % 2] for i in range(len(tasks))}
        state.apply_install([0], host_map)
        assert state.resident_order() == [0]
        assert state.hosts[(0, 1)] == (1,)
        with pytest.raises(ValueError):
            state.apply_migrate(0, 0, 0, 1)  # no live processors

    def test_apply_op_dispatch_matches_direct_calls(self):
        a = self._live()
        b = self._live()
        hosts = [[0] for _ in a.tasks_of(0)]
        a.apply_place(0, hosts)
        b.apply_op(["place", 0, hosts])
        assert a.hosts == b.hosts
        assert a.utilization() == b.utilization()
        with pytest.raises(ValueError):
            a.apply_op(["rebalance", 0])

    def test_prime_and_forget_taskset(self):
        state = self._live()
        external = tenant_taskset(ChurnConfig(seed=123), 0)
        state.prime_taskset(9, external)
        assert state.taskset_of(9) is external
        state.forget_taskset(9)
        # After forgetting, the generated set is used again.
        assert state.taskset_of(9) is not external
