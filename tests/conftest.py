"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import settings as hypothesis_settings
from hypothesis import strategies as st

from repro.core.task import Task, TaskSet

# Deterministic hypothesis runs: example generation is derived from the
# test body, not wall-clock entropy, so CI results are reproducible and a
# counterexample found once is found every time.
hypothesis_settings.register_profile("ci", derandomize=True)
hypothesis_settings.load_profile("ci")


@pytest.fixture
def rng():
    """A fresh, deterministically seeded NumPy Generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def harmonic_set():
    """A schedulable harmonic task set (single chain, U = 1.125)."""
    return TaskSet.from_pairs([(1, 4), (2, 8), (6, 16), (8, 32)])


@pytest.fixture
def tight_harmonic_set():
    """A harmonic set whose partitioning on 2 processors needs a split."""
    return TaskSet.from_pairs([(2, 4), (4, 8), (7, 16), (12, 32)])


@pytest.fixture
def general_set():
    """A non-harmonic set with mixed utilizations."""
    return TaskSet.from_pairs([(1, 5), (2, 7), (3, 13), (4, 19), (5, 33)])


# -- hypothesis strategies ------------------------------------------------------


def task_strategy(
    *,
    min_period: float = 1.0,
    max_period: float = 1000.0,
    max_util: float = 1.0,
):
    """Strategy producing a single valid Task."""
    return st.builds(
        lambda period, util: Task(cost=max(period * util, 1e-6), period=period),
        period=st.floats(
            min_value=min_period,
            max_value=max_period,
            allow_nan=False,
            allow_infinity=False,
        ),
        util=st.floats(min_value=1e-4, max_value=max_util),
    )


def taskset_strategy(
    *,
    min_tasks: int = 1,
    max_tasks: int = 10,
    max_util: float = 0.9,
    min_period: float = 1.0,
    max_period: float = 1000.0,
):
    """Strategy producing a TaskSet of valid tasks."""
    return st.lists(
        task_strategy(
            min_period=min_period, max_period=max_period, max_util=max_util
        ),
        min_size=min_tasks,
        max_size=max_tasks,
    ).map(TaskSet)


def integer_taskset_strategy(
    *, min_tasks: int = 2, max_tasks: int = 6, max_period: int = 32
):
    """TaskSets with small integer parameters — exact hyperperiods, so the
    simulator can cover a full hyperperiod cheaply."""

    def build(params):
        return TaskSet(
            Task(cost=float(c), period=float(t))
            for c, t in params
        )

    pair = st.tuples(
        st.integers(min_value=1, max_value=max_period),
        st.integers(min_value=1, max_value=max_period),
    ).map(lambda ct: (min(ct), max(ct)))
    return st.lists(pair, min_size=min_tasks, max_size=max_tasks).map(build)
