"""Unit tests for admission policies and the shared Assign routine."""

import pytest

from repro.core.admission import ExactRTAAdmission, ThresholdAdmission
from repro.core.assign import assign_piece
from repro.core.partition import PendingPiece, ProcessorState
from repro.core.task import Subtask, SubtaskKind, Task


def proc_with(pairs, start_tid=10):
    proc = ProcessorState(index=0)
    for i, (c, t) in enumerate(pairs):
        proc.add(Subtask.whole(Task(cost=c, period=t, tid=start_tid + i)))
    return proc


class TestExactRTAAdmission:
    def test_fits_uses_rta(self):
        policy = ExactRTAAdmission()
        proc = proc_with([(2, 4)])
        assert policy.fits(proc, Subtask.whole(Task(cost=2, period=8, tid=0)))
        assert not policy.fits(proc, Subtask.whole(Task(cost=5, period=8, tid=0)))

    def test_split_cost_positive_on_partial_room(self):
        policy = ExactRTAAdmission()
        proc = proc_with([(2, 4)])
        piece = PendingPiece.of(Task(cost=6.0, period=8.0, tid=0))
        c = policy.split_cost(proc, piece)
        assert 0 < c < 6.0

    def test_method_validated(self):
        with pytest.raises(ValueError):
            ExactRTAAdmission(method="magic")

    def test_describe(self):
        assert "points" in ExactRTAAdmission().describe()
        assert "binary" in ExactRTAAdmission(method="binary").describe()


class TestThresholdAdmission:
    def test_fits_below_threshold(self):
        policy = ThresholdAdmission(0.7)
        proc = proc_with([(2, 10)])  # U = 0.2
        assert policy.fits(proc, Subtask.whole(Task(cost=4, period=10, tid=0)))
        assert not policy.fits(proc, Subtask.whole(Task(cost=6, period=10, tid=0)))

    def test_boundary_counts_as_fit(self):
        policy = ThresholdAdmission(0.5)
        proc = proc_with([(2, 10)])
        assert policy.fits(proc, Subtask.whole(Task(cost=3, period=10, tid=0)))

    def test_split_fills_exactly_to_threshold(self):
        policy = ThresholdAdmission(0.6)
        proc = proc_with([(2, 10)])  # U = 0.2 -> headroom 0.4
        piece = PendingPiece.of(Task(cost=9.0, period=10.0, tid=0))
        assert policy.split_cost(proc, piece) == pytest.approx(4.0)

    def test_split_capped_by_piece_cost(self):
        policy = ThresholdAdmission(0.9)
        proc = proc_with([(1, 10)])
        piece = PendingPiece.of(Task(cost=2.0, period=10.0, tid=0))
        assert policy.split_cost(proc, piece) == pytest.approx(2.0)

    def test_no_headroom_gives_zero(self):
        policy = ThresholdAdmission(0.2)
        proc = proc_with([(2, 10)])
        piece = PendingPiece.of(Task(cost=2.0, period=10.0, tid=0))
        assert policy.split_cost(proc, piece) == 0.0

    def test_threshold_validated(self):
        with pytest.raises(ValueError):
            ThresholdAdmission(0.0)
        with pytest.raises(ValueError):
            ThresholdAdmission(1.5)


class TestAssignPiece:
    def test_entire_fit(self):
        proc = proc_with([(2, 4)])
        piece = PendingPiece.of(Task(cost=2.0, period=8.0, tid=0))
        outcome = assign_piece(piece, proc, ExactRTAAdmission())
        assert outcome.completed and not outcome.filled
        assert piece.cost == 0.0
        assert len(proc.subtasks) == 2
        assert not proc.full

    def test_split_marks_full_and_keeps_remainder(self):
        proc = proc_with([(2, 4)])
        piece = PendingPiece.of(Task(cost=7.0, period=8.0, tid=0))
        outcome = assign_piece(piece, proc, ExactRTAAdmission())
        assert not outcome.completed and outcome.filled
        assert proc.full
        assert piece.cost == pytest.approx(7.0 - outcome.placed_cost)
        assert piece.index == 2
        body = proc.subtasks[-1]
        assert body.kind is SubtaskKind.BODY

    def test_nothing_fits(self):
        proc = proc_with([(2, 4), (4, 8)])  # U = 1.0
        piece = PendingPiece.of(Task(cost=4.0, period=8.0, tid=0))
        outcome = assign_piece(piece, proc, ExactRTAAdmission())
        assert not outcome.completed and outcome.filled
        assert outcome.placed_cost == 0.0
        assert piece.cost == 4.0
        assert len(proc.subtasks) == 2

    def test_threshold_split(self):
        proc = proc_with([(3, 10)])
        piece = PendingPiece.of(Task(cost=9.0, period=10.0, tid=0))
        outcome = assign_piece(piece, proc, ThresholdAdmission(0.7))
        assert not outcome.completed
        assert outcome.placed_cost == pytest.approx(4.0)
        assert proc.utilization == pytest.approx(0.7)

    def test_processor_still_schedulable_after_split(self):
        proc = proc_with([(1, 3), (2, 9)])
        piece = PendingPiece.of(Task(cost=15.0, period=20.0, tid=0))
        assign_piece(piece, proc, ExactRTAAdmission())
        assert proc.is_schedulable()
