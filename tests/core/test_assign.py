"""Direct tests of the shared Assign routine (Algorithm 2)."""

import pytest

from repro.core.admission import ExactRTAAdmission, ThresholdAdmission
from repro.core.assign import AssignOutcome, assign_piece
from repro.core.partition import PendingPiece, ProcessorState
from repro.core.task import Subtask, SubtaskKind, Task


def proc_with(pairs, start_tid=10):
    proc = ProcessorState(index=0)
    for i, (c, t) in enumerate(pairs):
        proc.add(Subtask.whole(Task(cost=c, period=t, tid=start_tid + i)))
    return proc


class TestOutcomeAccounting:
    def test_entire_fit_placed_cost(self):
        proc = proc_with([(1, 4)])
        piece = PendingPiece.of(Task(cost=2.0, period=8.0, tid=0))
        outcome = assign_piece(piece, proc, ExactRTAAdmission())
        assert outcome == AssignOutcome(
            completed=True, filled=False, placed_cost=2.0
        )

    def test_split_placed_cost_matches_body(self):
        proc = proc_with([(2, 4)])
        piece = PendingPiece.of(Task(cost=7.0, period=8.0, tid=0))
        outcome = assign_piece(piece, proc, ExactRTAAdmission())
        body = proc.subtasks[-1]
        assert outcome.placed_cost == pytest.approx(body.cost)
        assert body.cost + piece.cost == pytest.approx(7.0)

    def test_boundary_promotion_to_entire_fit(self):
        """When MaxSplit admits (numerically) the entire remainder, the
        piece is finalized rather than split into a sliver + remainder,
        and the processor is still marked full (it has a bottleneck).
        The fits/split disagreement is a one-ulp race between two exact
        procedures, so it is exercised with a stub policy."""

        class BoundaryPolicy:
            def fits(self, proc, candidate):
                return False

            def split_cost(self, proc, piece):
                return piece.cost  # "everything fits after all"

            def describe(self):
                return "boundary-stub"

        proc = proc_with([(5, 10)])
        piece = PendingPiece.of(Task(cost=5.0, period=10.0, tid=0))
        outcome = assign_piece(piece, proc, BoundaryPolicy())
        assert outcome.completed and outcome.filled
        assert proc.subtasks[-1].kind is SubtaskKind.WHOLE
        assert piece.cost == 0.0
        assert proc.full

    def test_nothing_fits_leaves_piece_untouched(self):
        proc = proc_with([(2, 4), (4, 8)])  # U = 1
        piece = PendingPiece.of(Task(cost=3.0, period=8.0, tid=0))
        before = piece.cost
        outcome = assign_piece(piece, proc, ExactRTAAdmission())
        assert outcome.placed_cost == 0.0
        assert piece.cost == before
        assert piece.index == 1
        assert proc.full


class TestSplitChainAcrossProcessors:
    def test_three_processor_chain(self):
        """A fat task walks across three partially loaded processors.

        Each resident (1,4) admits at most ~3 units of a top-priority
        newcomer (R = 1 + c <= 4), so cost 8 completes on processor 3.
        """
        procs = [proc_with([(1.0, 4)], start_tid=10 + i) for i in range(3)]
        piece = PendingPiece.of(Task(cost=8.0, period=12.0, tid=0))
        placed = []
        for proc in procs:
            outcome = assign_piece(piece, proc, ExactRTAAdmission())
            placed.append(outcome.placed_cost)
            if outcome.completed:
                break
        assert sum(placed) == pytest.approx(8.0)
        assert piece.cost == 0.0
        # the synthetic deadline shrank monotonically along the chain
        kinds = [
            s.kind for proc in procs for s in proc.subtasks if s.priority == 0
        ]
        assert kinds.count(SubtaskKind.TAIL) == 1

    def test_deadlines_shrink_along_chain(self):
        procs = [proc_with([(1.0, 4)], start_tid=10 + i) for i in range(3)]
        piece = PendingPiece.of(Task(cost=8.0, period=12.0, tid=0))
        deadlines = []
        for proc in procs:
            deadlines.append(piece.deadline)
            if assign_piece(piece, proc, ExactRTAAdmission()).completed:
                break
        assert deadlines == sorted(deadlines, reverse=True)
