"""Tests for the baseline algorithms: SPA1/SPA2, strict partitioned RM,
global RM-US and the Dhall construction."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.baselines.global_rm import (
    dhall_taskset,
    rm_us_priority_order,
    rm_us_schedulable,
    rm_us_threshold,
    rm_us_utilization_bound,
)
from repro.core.baselines.partitioned import FitHeuristic, partition_no_split
from repro.core.baselines.spa import partition_spa1, partition_spa2
from repro.core.bounds import ll_bound
from repro.core.task import TaskSet
from repro.taskgen.generators import TaskSetGenerator


class TestSPA1:
    def test_accepts_below_ll_bound(self):
        gen = TaskSetGenerator(n=8, period_model="loguniform").light()
        for seed in range(6):
            ts = gen.generate(u_norm=ll_bound(8) - 0.02, processors=2, seed=seed)
            assert partition_spa1(ts, 2).success

    def test_never_accepts_above_threshold_capacity(self):
        """Total capacity under SPA1 is M * Theta(N) — hard ceiling."""
        gen = TaskSetGenerator(n=8, period_model="loguniform").light()
        for seed in range(6):
            ts = gen.generate(u_norm=ll_bound(8) + 0.05, processors=2, seed=seed)
            assert not partition_spa1(ts, 2).success

    def test_processor_utilization_capped_at_theta(self):
        gen = TaskSetGenerator(n=10, period_model="loguniform").light()
        theta = ll_bound(10)
        ts = gen.generate(u_norm=theta - 0.01, processors=2, seed=3)
        result = partition_spa1(ts, 2)
        for proc in result.processors:
            assert proc.utilization <= theta + 1e-9

    def test_label(self, harmonic_set):
        assert partition_spa1(harmonic_set, 2).algorithm.startswith("SPA1")


class TestSPA2:
    def test_accepts_below_ll_bound_general_sets(self):
        gen = TaskSetGenerator(n=8, period_model="loguniform")
        for seed in range(6):
            ts = gen.generate(u_norm=ll_bound(8) - 0.02, processors=2, seed=seed)
            assert partition_spa2(ts, 2).success, f"seed {seed}"

    def test_heavy_tasks_handled(self):
        ts = TaskSet.from_pairs([(6, 10), (1, 20), (1, 40)])
        result = partition_spa2(ts, 2)
        assert result.success

    def test_valid_partitions(self):
        gen = TaskSetGenerator(n=8, period_model="loguniform")
        for seed in range(6):
            ts = gen.generate(u_norm=0.65, processors=2, seed=seed)
            result = partition_spa2(ts, 2)
            if result.success:
                assert result.validate() == []

    def test_label(self, harmonic_set):
        assert partition_spa2(harmonic_set, 2).algorithm.startswith("SPA2")


class TestPartitionedNoSplit:
    def test_first_fit_simple(self, harmonic_set):
        result = partition_no_split(harmonic_set, 2)
        assert result.success
        assert result.validate() == []
        assert not result.split_tids()

    def test_heuristics_all_work(self, harmonic_set):
        for h in FitHeuristic:
            result = partition_no_split(harmonic_set, 2, heuristic=h)
            assert result.success, h

    def test_ll_admission_weaker_than_rta(self):
        gen = TaskSetGenerator(n=8, period_model="loguniform")
        for seed in range(8):
            ts = gen.generate(u_norm=0.7, processors=2, seed=seed)
            ll_ok = partition_no_split(ts, 2, admission="ll").success
            rta_ok = partition_no_split(ts, 2, admission="rta").success
            if ll_ok:
                assert rta_ok

    def test_unknown_admission_rejected(self, harmonic_set):
        with pytest.raises(ValueError):
            partition_no_split(harmonic_set, 2, admission="vibes")

    def test_cannot_place_heavy_overload(self):
        ts = TaskSet.from_pairs([(9, 10), (9, 10), (9, 10)])
        result = partition_no_split(ts, 2)
        assert not result.success
        assert len(result.unassigned_tids) == 1

    def test_worst_fit_spreads_load(self):
        ts = TaskSet.from_pairs([(1, 10), (1, 10), (1, 10), (1, 10)])
        result = partition_no_split(
            ts, 4, heuristic=FitHeuristic.WORST_FIT
        )
        assert all(len(p.subtasks) == 1 for p in result.processors)

    def test_best_fit_concentrates_load(self):
        ts = TaskSet.from_pairs([(1, 10), (1, 12), (1, 14), (1, 16)])
        result = partition_no_split(ts, 4, heuristic=FitHeuristic.BEST_FIT)
        used = [p for p in result.processors if p.subtasks]
        assert len(used) == 1

    def test_priority_order_mode(self, harmonic_set):
        result = partition_no_split(
            harmonic_set, 2, decreasing_utilization=False
        )
        assert result.success

    def test_rejects_zero_processors(self, harmonic_set):
        with pytest.raises(ValueError):
            partition_no_split(harmonic_set, 0)


class TestRMUS:
    def test_threshold_values(self):
        assert rm_us_threshold(1) == pytest.approx(1.0)
        assert rm_us_threshold(4) == pytest.approx(0.4)

    def test_bound_values(self):
        assert rm_us_utilization_bound(1) == pytest.approx(1.0)
        assert rm_us_utilization_bound(4) == pytest.approx(1.6)

    def test_schedulable_test(self):
        ts = TaskSet.from_pairs([(1, 10)] * 4)  # U = 0.4
        assert rm_us_schedulable(ts, 4)
        heavy = TaskSet.from_pairs([(5, 10)] * 8)  # U = 4.0 > 1.6
        assert not rm_us_schedulable(heavy, 4)

    def test_priority_order_promotes_heavy(self):
        ts = TaskSet.from_pairs([(1, 2), (9, 10)])  # U: 0.5, 0.9; zeta(2)=0.5
        order = rm_us_priority_order(ts, 2)
        heavy_tid = max(ts, key=lambda t: t.utilization).tid
        assert order[0] == heavy_tid

    def test_priority_order_is_permutation(self):
        gen = TaskSetGenerator(n=7, period_model="loguniform")
        ts = gen.generate(u_norm=0.5, processors=2, seed=0)
        order = rm_us_priority_order(ts, 2)
        assert sorted(order) == [t.tid for t in ts]

    def test_rejects_bad_processors(self):
        with pytest.raises(ValueError):
            rm_us_utilization_bound(0)


class TestDhallTaskset:
    def test_structure(self):
        ts = dhall_taskset(4, 0.05)
        assert len(ts) == 5
        # the long task has the longest period -> lowest RM priority
        assert ts[-1].cost == pytest.approx(1.0)
        assert ts[-1].period == pytest.approx(1.05)

    def test_utilization_shrinks_with_epsilon(self):
        big = dhall_taskset(4, 0.2).normalized_utilization(4)
        small = dhall_taskset(4, 0.001).normalized_utilization(4)
        assert small < big

    def test_validates_epsilon(self):
        with pytest.raises(ValueError):
            dhall_taskset(4, 0.0)
        with pytest.raises(ValueError):
            dhall_taskset(4, 0.7)

    def test_validates_processors(self):
        with pytest.raises(ValueError):
            dhall_taskset(0, 0.1)


class TestBaselineRelationships:
    @given(st.integers(0, 3_000))
    @settings(max_examples=20, deadline=None)
    def test_spa1_acceptance_implies_rmts_light_acceptance(self, seed):
        """Exact-RTA admission is strictly more permissive per processor,
        and both use the same ordering/placement, so SPA1 success must
        imply RM-TS/light success."""
        from repro.core.rmts_light import partition_rmts_light

        rng = np.random.default_rng(seed)
        gen = TaskSetGenerator(n=8, period_model="loguniform").light()
        ts = gen.generate(
            u_norm=float(rng.uniform(0.5, 0.75)), processors=2, seed=rng
        )
        if partition_spa1(ts, 2).success:
            assert partition_rmts_light(ts, 2).success
