"""Unit and property tests for the parametric utilization bound library."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bounds import (
    ALL_BOUNDS,
    ConstantBound,
    HarmonicChainBound,
    LiuLaylandBound,
    RBound,
    TBound,
    best_bound_value,
    harmonic_chain_count,
    harmonic_chains,
    light_task_threshold,
    ll_bound,
    rmts_bound_cap,
    scaled_periods,
    theoretical_limits,
)
from repro.core.task import Task, TaskSet
from repro.taskgen.periods import harmonic_periods, k_chain_periods

from tests.conftest import taskset_strategy


class TestLLBound:
    def test_single_task(self):
        assert ll_bound(1) == pytest.approx(1.0)

    def test_two_tasks(self):
        assert ll_bound(2) == pytest.approx(2 * (math.sqrt(2) - 1))

    def test_three_tasks_is_77_98(self):
        assert ll_bound(3) == pytest.approx(0.7798, abs=1e-4)

    def test_limit_is_ln2(self):
        assert ll_bound(10**7) == pytest.approx(math.log(2), abs=1e-6)

    def test_empty(self):
        assert ll_bound(0) == 1.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ll_bound(-1)

    @given(st.integers(min_value=1, max_value=500))
    def test_monotone_decreasing(self, n):
        assert ll_bound(n + 1) <= ll_bound(n) + 1e-12


class TestThresholds:
    def test_light_threshold_limit(self):
        # Theta/(1+Theta) -> ln2/(1+ln2) ~ 40.94 %
        assert light_task_threshold(10**6) == pytest.approx(0.4094, abs=1e-3)

    def test_cap_limit(self):
        # 2 Theta/(1+Theta) -> 81.88 %
        assert rmts_bound_cap(10**6) == pytest.approx(0.8188, abs=1e-3)

    def test_cap_is_twice_threshold(self):
        for n in (1, 2, 5, 100):
            assert rmts_bound_cap(n) == pytest.approx(
                2 * light_task_threshold(n)
            )

    def test_theoretical_limits_dict(self):
        limits = theoretical_limits()
        assert limits["ll"] == pytest.approx(math.log(2))
        assert limits["rmts_cap"] == pytest.approx(
            2 * math.log(2) / (1 + math.log(2))
        )


class TestScaledPeriods:
    def test_all_in_factor_two_band(self):
        sp = scaled_periods([10, 25, 70, 400])
        assert sp.max() / sp.min() < 2.0 + 1e-9
        assert sp.max() == pytest.approx(400.0)

    def test_power_of_two_harmonic_collapses(self):
        sp = scaled_periods([5, 10, 20, 40])
        assert np.allclose(sp, 40.0)

    def test_sorted_ascending(self):
        sp = scaled_periods([100, 30, 55])
        assert list(sp) == sorted(sp)

    def test_empty(self):
        assert scaled_periods([]).size == 0

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            scaled_periods([1.0, 0.0])


class TestHarmonicChains:
    def test_single_chain(self):
        chains = harmonic_chains([4, 8, 16, 32])
        assert len(chains) == 1
        assert sorted(chains[0]) == [0, 1, 2, 3]

    def test_two_chains(self):
        # {4, 8} and {6, 18} are harmonic internally, not across.
        assert harmonic_chain_count([4, 8, 6, 18]) == 2

    def test_equal_periods_chain_together(self):
        assert harmonic_chain_count([5, 5, 5]) == 1

    def test_pairwise_incomparable(self):
        assert harmonic_chain_count([5, 7, 11]) == 3

    def test_empty(self):
        assert harmonic_chain_count([]) == 0
        assert harmonic_chains([]) == []

    def test_chains_partition_indices(self):
        periods = [4, 6, 8, 12, 9, 27]
        chains = harmonic_chains(periods)
        flat = sorted(i for c in chains for i in c)
        assert flat == list(range(len(periods)))

    def test_chains_internally_harmonic(self):
        periods = [4, 6, 8, 12, 9, 27, 16, 18]
        for chain in harmonic_chains(periods):
            vals = sorted(periods[i] for i in chain)
            for a, b in zip(vals, vals[1:]):
                assert b % a == 0 or b == a

    def test_minimality_vs_bruteforce_small(self):
        # Dilworth: min chains = max antichain; {4,6,9} has antichain {4,6,9}
        assert harmonic_chain_count([4, 6, 9, 12, 36]) <= 3

    @given(st.integers(min_value=1, max_value=5), st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_generated_k_chain_counts(self, k, seed):
        rng = np.random.default_rng(seed)
        periods = k_chain_periods(k + 4, k, rng)
        assert harmonic_chain_count(periods) == k

    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_generated_harmonic_counts_one(self, seed):
        rng = np.random.default_rng(seed)
        periods = harmonic_periods(8, rng)
        assert harmonic_chain_count(periods) == 1


class TestBoundObjects:
    def test_ll_bound_object(self, general_set):
        assert LiuLaylandBound().value(general_set) == pytest.approx(
            ll_bound(len(general_set))
        )

    def test_hc_bound_harmonic_is_one(self, harmonic_set):
        assert HarmonicChainBound().value(harmonic_set) == pytest.approx(1.0)

    def test_tbound_harmonic_power2_is_one(self):
        ts = TaskSet.from_pairs([(1, 4), (1, 8), (1, 16)])
        assert TBound().value(ts) == pytest.approx(1.0)

    def test_rbound_harmonic_power2_is_one(self):
        ts = TaskSet.from_pairs([(1, 4), (1, 8), (1, 16)])
        assert RBound().value(ts) == pytest.approx(1.0)

    def test_rbound_two_task_worst_case(self):
        # r = sqrt(2) minimizes the 2-task R-bound at 2(sqrt(2)-1).
        ts = TaskSet.from_pairs([(0.1, 1.0), (0.1, math.sqrt(2))])
        assert RBound().value(ts) == pytest.approx(2 * (math.sqrt(2) - 1), abs=1e-9)

    def test_constant_bound(self):
        ts = TaskSet.from_pairs([(1, 4)])
        assert ConstantBound(0.9).value(ts) == 0.9

    def test_constant_bound_validates(self):
        with pytest.raises(ValueError):
            ConstantBound(0.0)
        with pytest.raises(ValueError):
            ConstantBound(1.5)

    def test_capped_value(self, harmonic_set):
        hc = HarmonicChainBound()
        assert hc.capped_value(harmonic_set) == pytest.approx(
            rmts_bound_cap(len(harmonic_set))
        )

    def test_best_bound_value(self, harmonic_set):
        assert best_bound_value(harmonic_set) == pytest.approx(1.0)

    def test_best_bound_empty_menu_rejected(self, harmonic_set):
        with pytest.raises(ValueError):
            best_bound_value(harmonic_set, [])

    def test_empty_set_values(self):
        empty = TaskSet([])
        for bound in ALL_BOUNDS:
            assert bound.value(empty) == pytest.approx(1.0)


class TestBoundProperties:
    @given(taskset_strategy(min_tasks=1, max_tasks=10))
    @settings(max_examples=50, deadline=None)
    def test_ordering_tbound_rbound_ll(self, ts):
        """More period information never hurts: T >= R >= Theta(N)."""
        t = TBound().value(ts)
        r = RBound().value(ts)
        theta = ll_bound(len(ts))
        assert t >= r - 1e-9
        assert r >= theta - 1e-9

    @given(taskset_strategy(min_tasks=1, max_tasks=10))
    @settings(max_examples=50, deadline=None)
    def test_all_bounds_in_unit_range(self, ts):
        for bound in ALL_BOUNDS:
            v = bound.value(ts)
            assert 0.0 < v <= 1.0 + 1e-9

    @given(taskset_strategy(min_tasks=2, max_tasks=8))
    @settings(max_examples=30, deadline=None)
    def test_bounds_depend_only_on_periods(self, ts):
        """Deflating costs never changes the bound value (Lemma 1 basis)."""
        deflated = ts.scaled_costs(0.5)
        for bound in ALL_BOUNDS:
            assert bound.value(ts) == pytest.approx(bound.value(deflated))

    @given(taskset_strategy(min_tasks=1, max_tasks=8))
    @settings(max_examples=30, deadline=None)
    def test_hc_bound_ge_ll(self, ts):
        assert HarmonicChainBound().value(ts) >= ll_bound(len(ts)) - 1e-9
