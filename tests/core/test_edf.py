"""Tests for the EDF baselines and the demand-bound-function substrate."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.baselines.edf import (
    dbf_test_points,
    demand_bound_function,
    edf_schedulable,
    partition_edf,
)
from repro.core.baselines.partitioned import FitHeuristic, partition_no_split
from repro.core.rta import is_schedulable
from repro.core.task import Subtask, SubtaskKind, Task, TaskSet
from repro.taskgen.generators import TaskSetGenerator

from tests.conftest import integer_taskset_strategy


def subs(taskset):
    return [Subtask.whole(t) for t in taskset]


class TestDemandBoundFunction:
    def test_zero_interval(self):
        ts = TaskSet.from_pairs([(1, 4)])
        assert demand_bound_function(subs(ts), 0.0) == 0.0

    def test_single_job_demand(self):
        ts = TaskSet.from_pairs([(2, 5)])
        assert demand_bound_function(subs(ts), 5.0) == pytest.approx(2.0)
        assert demand_bound_function(subs(ts), 4.9) == pytest.approx(0.0)

    def test_multiple_jobs(self):
        ts = TaskSet.from_pairs([(2, 5)])
        assert demand_bound_function(subs(ts), 10.0) == pytest.approx(4.0)
        assert demand_bound_function(subs(ts), 14.9) == pytest.approx(4.0)
        assert demand_bound_function(subs(ts), 15.0) == pytest.approx(6.0)

    def test_constrained_deadline_shifts_demand(self):
        t = Task(cost=2.0, period=10.0, tid=0)
        tail = Subtask(cost=2.0, period=10.0, deadline=6.0, parent=t,
                       index=2, kind=SubtaskKind.TAIL)
        assert demand_bound_function([tail], 5.9) == 0.0
        assert demand_bound_function([tail], 6.0) == pytest.approx(2.0)

    def test_negative_interval_rejected(self):
        with pytest.raises(ValueError):
            demand_bound_function([], -1.0)

    @given(integer_taskset_strategy(max_tasks=4, max_period=12),
           st.floats(min_value=0.0, max_value=100.0))
    @settings(max_examples=40, deadline=None)
    def test_dbf_monotone(self, ts, t):
        s = subs(ts)
        assert demand_bound_function(s, t) <= demand_bound_function(s, t + 1.0) + 1e-9


class TestDbfTestPoints:
    def test_points_are_deadlines(self):
        ts = TaskSet.from_pairs([(1, 4), (1, 6)])
        pts = dbf_test_points(subs(ts), 12.0)
        assert set(pts) == {4.0, 6.0, 8.0, 12.0}

    def test_horizon_respected(self):
        ts = TaskSet.from_pairs([(1, 5)])
        pts = dbf_test_points(subs(ts), 11.0)
        assert pts.max() <= 11.0


class TestEdfSchedulable:
    def test_empty(self):
        assert edf_schedulable([])

    def test_implicit_deadline_u_le_1(self):
        # Non-harmonic, U = 1.0: EDF schedules it, RMS does not.
        ts = TaskSet.from_pairs([(2.5, 5), (3.5, 7)])
        assert edf_schedulable(subs(ts))
        assert not is_schedulable(subs(ts))

    def test_overload_rejected(self):
        ts = TaskSet.from_pairs([(3, 5), (3, 6)])
        assert not edf_schedulable(subs(ts))

    def test_constrained_deadlines_checked_by_dbf(self):
        t0 = Task(cost=3.0, period=6.0, tid=0)
        t1 = Task(cost=3.0, period=6.0, tid=1)
        tight = Subtask(cost=3.0, period=6.0, deadline=5.0, parent=t1,
                        index=2, kind=SubtaskKind.TAIL)
        # dbf(5) = 3 <= 5 ok; dbf(6) = 6 <= 6 ok -> schedulable
        assert edf_schedulable([Subtask.whole(t0), tight])
        tighter = Subtask(cost=3.0, period=6.0, deadline=2.5, parent=t1,
                          index=2, kind=SubtaskKind.TAIL)
        # dbf(2.5) = 3 > 2.5 -> not schedulable
        assert not edf_schedulable([Subtask.whole(t0), tighter])

    @given(integer_taskset_strategy(max_tasks=5, max_period=16))
    @settings(max_examples=40, deadline=None)
    def test_edf_dominates_fixed_priority(self, ts):
        """EDF is optimal on one processor: whatever RMS schedules
        (implicit deadlines), EDF schedules too."""
        if is_schedulable(subs(ts)):
            assert edf_schedulable(subs(ts))


class TestPartitionEdf:
    def test_simple_success(self, harmonic_set):
        result = partition_edf(harmonic_set, 2)
        assert result.success
        assert result.algorithm.startswith("P-EDF")

    def test_capacity_one_exact(self):
        # two tasks of U=1 need exactly two processors under EDF
        ts = TaskSet.from_pairs([(5, 5), (7, 7)])
        assert not partition_edf(ts, 1).success
        assert partition_edf(ts, 2).success

    def test_fat_task_witness_fails(self):
        ts = TaskSet.from_pairs([(5.2, 10)] * 3)
        assert not partition_edf(ts, 2).success

    def test_edf_accepts_whenever_rm_partitioning_does(self):
        gen = TaskSetGenerator(n=10, period_model="loguniform")
        for seed in range(10):
            ts = gen.generate(u_norm=0.85, processors=3, seed=seed)
            if partition_no_split(ts, 3, admission="rta").success:
                assert partition_edf(ts, 3).success

    def test_heuristics(self, harmonic_set):
        for h in FitHeuristic:
            assert partition_edf(harmonic_set, 2, heuristic=h).success

    def test_rejects_zero_processors(self, harmonic_set):
        with pytest.raises(ValueError):
            partition_edf(harmonic_set, 0)
