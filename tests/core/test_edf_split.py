"""Tests for semi-partitioned EDF (window-constrained migration)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.baselines.edf import edf_schedulable, partition_edf
from repro.core.baselines.edf_split import (
    max_edf_piece_cost,
    partition_edf_split,
)
from repro.core.task import Subtask, SubtaskKind, Task, TaskSet
from repro.sim.engine import simulate_partition
from repro.taskgen.generators import TaskSetGenerator


class TestMaxEdfPieceCost:
    def test_empty_processor_full_window(self):
        task = Task(cost=8.0, period=10.0, tid=0)
        assert max_edf_piece_cost([], task, 5.0) == pytest.approx(5.0)

    def test_capped_by_task_cost(self):
        task = Task(cost=2.0, period=10.0, tid=0)
        assert max_edf_piece_cost([], task, 5.0) == pytest.approx(2.0)

    def test_zero_window(self):
        task = Task(cost=2.0, period=10.0, tid=0)
        assert max_edf_piece_cost([], task, 0.0) == 0.0

    def test_fills_to_unit_utilization(self):
        # existing U=0.5; a window-5 piece can take c=5 exactly (EDF
        # schedules U=1 with these deadline points).
        other = Subtask.whole(Task(cost=5.0, period=10.0, tid=1))
        task = Task(cost=8.0, period=10.0, tid=0)
        c = max_edf_piece_cost([other], task, 5.0)
        assert c == pytest.approx(5.0)

    def test_loaded_processor_reduces_capacity(self):
        # existing U=0.6 leaves only c=4 for the newcomer (U bound binds
        # before the window does).
        other = Subtask.whole(Task(cost=6.0, period=10.0, tid=1))
        task = Task(cost=8.0, period=10.0, tid=0)
        c = max_edf_piece_cost([other], task, 5.0)
        assert c == pytest.approx(4.0, rel=1e-6)
        piece = Subtask(cost=c, period=10.0, deadline=5.0, parent=task,
                        index=1, kind=SubtaskKind.BODY)
        assert edf_schedulable([other, piece])

    def test_result_is_maximal(self):
        other = Subtask.whole(Task(cost=4.0, period=8.0, tid=1))
        task = Task(cost=7.0, period=12.0, tid=0)
        c = max_edf_piece_cost([other], task, 6.0)
        bigger = Subtask(cost=c + 1e-4, period=12.0, deadline=6.0,
                         parent=task, index=1, kind=SubtaskKind.BODY)
        assert not edf_schedulable([other, bigger])


class TestPartitionEdfSplit:
    def test_fat_task_witness_schedulable(self):
        ts = TaskSet.from_pairs([(5.2, 10)] * 3)
        result = partition_edf_split(ts, 2)
        assert result.success
        assert result.validate() == []
        assert result.split_tids()
        assert result.scheduler == "edf"

    def test_dominates_strict_edf(self):
        gen = TaskSetGenerator(n=8, period_model="discrete")
        for seed in range(10):
            ts = gen.generate(u_norm=0.9, processors=2, seed=seed)
            if partition_edf(ts, 2).success:
                assert partition_edf_split(ts, 2).success

    def test_window_budget_respected(self):
        ts = TaskSet.from_pairs([(5.2, 10)] * 3)
        result = partition_edf_split(ts, 2)
        for view in result.split_views().values():
            pieces = view.sorted_pieces()
            if len(pieces) > 1:
                assert sum(p.deadline for p in pieces) <= view.task.period + 1e-9

    def test_overload_fails(self):
        ts = TaskSet.from_pairs([(9, 10)] * 3)
        assert not partition_edf_split(ts, 2).success

    def test_max_pieces_cap(self):
        ts = TaskSet.from_pairs([(5.2, 10)] * 3)
        result = partition_edf_split(ts, 2, max_pieces=2)
        for view in result.split_views().values():
            assert len(view.pieces) <= 2

    def test_rejects_zero_processors(self, harmonic_set):
        with pytest.raises(ValueError):
            partition_edf_split(harmonic_set, 0)


class TestEdfRuntime:
    def test_witness_simulates_clean_under_edf(self):
        ts = TaskSet.from_pairs([(5.2, 10)] * 3)
        part = partition_edf_split(ts, 2)
        sim = simulate_partition(part, horizon=200.0, record_trace=True)
        assert sim.ok
        assert sim.trace.check_all() == []

    def test_scheduler_inferred_from_partition(self):
        ts = TaskSet.from_pairs([(5.2, 10)] * 3)
        part = partition_edf_split(ts, 2)
        # explicit and inferred runs agree
        a = simulate_partition(part, horizon=100.0)
        b = simulate_partition(part, horizon=100.0, scheduler="edf")
        assert a.max_response == b.max_response

    def test_fixed_priority_dispatch_can_miss_what_edf_meets(self):
        """The window split relies on EDF dispatching; forcing RMS
        priorities on the same partition may miss (tau2's piece has a
        tight window but the lowest RMS priority)."""
        ts = TaskSet.from_pairs([(5.2, 10)] * 3)
        part = partition_edf_split(ts, 2)
        edf_sim = simulate_partition(part, horizon=200.0)
        fixed_sim = simulate_partition(part, horizon=200.0, scheduler="fixed")
        assert edf_sim.ok
        # not asserting a miss (depends on layout), but EDF is never worse
        assert len(edf_sim.misses) <= len(fixed_sim.misses)

    def test_unknown_scheduler_rejected(self):
        ts = TaskSet.from_pairs([(1, 4)])
        part = partition_edf(ts, 1)
        with pytest.raises(ValueError):
            simulate_partition(part, horizon=8.0, scheduler="magic")

    @given(st.integers(0, 3_000))
    @settings(max_examples=15, deadline=None)
    def test_accepted_edf_ws_partitions_never_miss(self, seed):
        rng = np.random.default_rng(seed)
        m = int(rng.integers(2, 4))
        gen = TaskSetGenerator(n=3 * m, period_model="discrete")
        ts = gen.generate(u_norm=float(rng.uniform(0.7, 0.95)),
                          processors=m, seed=rng)
        part = partition_edf_split(ts, m)
        if not part.success:
            return
        assert part.validate() == []
        sim = simulate_partition(part, horizon=3000.0)
        assert sim.ok, sim.misses[:3]
