"""Eq. 1 synthetic deadlines: body *responses*, not costs.

The paper defines ``Delta^k = T - sum of preceding body response times``
(Eq. 1) and then shows body responses equal body costs when bodies are
highest-priority on their hosts (Lemma 2), giving Lemma 3's shortcut.  In
RM-TS phase 3 a pre-assigned task with *higher* priority can share a
body's processor; the shortcut would then be optimistic.  These tests pin
the general mechanism: the split bookkeeping must consume the body's
actual RTA response, and the resulting chains must be safe at run time.

(The hazard is practically unreachable through the full RM-TS pipeline —
the pre-assign condition starves phase 3 of lower-priority work; a 4000-
set random search finds no instance — but the mechanism is exercised
directly at the Assign level here.)
"""

import pytest

from repro.core.admission import ExactRTAAdmission
from repro.core.assign import assign_piece
from repro.core.partition import (
    PartitionResult,
    PendingPiece,
    ProcessorState,
)
from repro.core.rta import response_time
from repro.core.task import Subtask, SubtaskKind, Task, TaskSet
from repro.sim.engine import simulate_partition

import numpy as np


class TestPendingPieceResponses:
    def test_default_response_is_cost(self):
        piece = PendingPiece.of(Task(cost=6.0, period=12.0, tid=0))
        piece.split_off(2.0)
        assert piece.deadline == pytest.approx(10.0)

    def test_explicit_response_shrinks_deadline(self):
        piece = PendingPiece.of(Task(cost=6.0, period=12.0, tid=5))
        piece.split_off(2.0, response=3.5)
        assert piece.body_cost == pytest.approx(2.0)
        assert piece.body_response == pytest.approx(3.5)
        assert piece.deadline == pytest.approx(12.0 - 3.5)

    def test_response_below_cost_rejected(self):
        piece = PendingPiece.of(Task(cost=6.0, period=12.0, tid=5))
        with pytest.raises(ValueError):
            piece.split_off(2.0, response=1.0)


class TestAssignWithHigherPriorityResident:
    """The phase-3 shape: the target processor already hosts a task with
    higher priority than the piece being split onto it."""

    def _scenario(self):
        # resident high-priority task (pre-assigned style): (3, 9)
        resident = Task(cost=3.0, period=9.0, tid=0)
        proc = ProcessorState(index=0)
        proc.pre_assigned_tid = 0  # the phase-3 shape
        proc.add(Subtask.whole(resident))
        # the piece being split has LOWER priority (longer period)
        piece = PendingPiece.of(Task(cost=14.0, period=20.0, tid=1))
        return proc, piece

    def test_body_response_exceeds_cost(self):
        proc, piece = self._scenario()
        outcome = assign_piece(piece, proc, ExactRTAAdmission())
        assert not outcome.completed and outcome.filled
        body = proc.subtasks[-1]
        assert body.kind is SubtaskKind.BODY
        # the body suffers interference from the resident task
        r = response_time(
            body.cost, np.array([3.0]), np.array([9.0]), body.deadline
        )
        assert r is not None and r > body.cost + 1e-9
        # Eq. 1: the remainder's deadline accounts for the response
        assert piece.body_response == pytest.approx(r)
        assert piece.deadline == pytest.approx(20.0 - r)
        # Lemma 3's shortcut would have been optimistic
        assert piece.deadline < 20.0 - body.cost - 1e-9

    def test_completed_chain_is_valid_and_simulates_clean(self):
        proc, piece = self._scenario()
        assign_piece(piece, proc, ExactRTAAdmission())
        # place the tail on a second, empty processor
        proc2 = ProcessorState(index=1)
        outcome = assign_piece(piece, proc2, ExactRTAAdmission())
        assert outcome.completed
        taskset = TaskSet(
            [Task(cost=3.0, period=9.0), Task(cost=14.0, period=20.0)]
        )
        part = PartitionResult(
            algorithm="phase3-shape",
            taskset=taskset,
            processors=[proc, proc2],
            success=True,
        )
        assert part.validate() == []
        sim = simulate_partition(part, horizon=2000.0, record_trace=True)
        assert sim.ok
        assert sim.trace.check_all() == []

    def test_lemma3_shortcut_would_be_unsafe_here(self):
        """Build the same chain with the cost-based (Lemma 3) deadline and
        show RTA would accept a tail the true timing cannot support —
        i.e. the Eq. 1 accounting is not just pedantry."""
        proc, piece = self._scenario()
        outcome = assign_piece(piece, proc, ExactRTAAdmission())
        body = proc.subtasks[-1]
        true_deadline = piece.deadline
        optimistic = 20.0 - body.cost
        assert optimistic > true_deadline
        # a tail of cost equal to the optimistic window passes RTA alone
        # with the optimistic deadline but NOT with the true one
        tail_cost = piece.cost
        assert tail_cost <= optimistic  # would look fine under Lemma 3
        # true feasibility on an empty processor requires cost <= deadline
        assert (tail_cost <= true_deadline) == (
            piece.as_candidate().cost <= piece.deadline
        )


class TestConsumedWindowExhaustion:
    def test_infeasible_piece_reported(self):
        """When body responses consume the whole period, Assign must
        report infeasibility instead of crashing or looping."""
        resident = Task(cost=6.0, period=9.0, tid=0)  # hog
        proc = ProcessorState(index=0)
        proc.add(Subtask.whole(resident))
        piece = PendingPiece.of(Task(cost=8.0, period=20.0, tid=1))
        # consume the entire window artificially
        piece.split_off(0.5, response=20.0)
        assert piece.deadline <= 1e-9
        outcome = assign_piece(piece, proc, ExactRTAAdmission())
        assert outcome.infeasible
        assert not outcome.completed
