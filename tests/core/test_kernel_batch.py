"""Property tests: the batched RTA kernel vs the serial reference.

``repro.core.kernel`` promises *bit-identity*, not mere agreement: for
any batch of processor checks, every backend must reproduce the serial
path's verdicts, response-time floats, first-failure indices and
``rta_calls``/``rta_iterations`` accounting exactly.  These tests drive
that promise on randomized corpora — whole-task placements and real
``partition_rmts`` partitions with split subtasks — plus the adapter
integrations (partition validation, checked acceptance tests, service
batch revalidation) and the fork-pool counter protocol.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.algorithms import (
    PARTITIONERS,
    kernel_checked_algorithms,
    kernel_checked_test,
)
from repro.core.kernel import (
    BatchRTARequest,
    available_backends,
    check_subtask_lists,
    evaluate_batch,
    native_available,
    resolve_backend,
    stage_requests,
    stage_subtask_lists,
    using,
    validate_processors,
)
from repro.core.kernel import native as native_mod
from repro.core.rmts import partition_rmts
from repro.core.rta import is_schedulable, response_times
from repro.core.serialization import partition_to_dict
from repro.core.task import Subtask, Task, TaskSet
from repro.perf import config as perf_config
from repro.perf.telemetry import COUNTERS
from repro.runner.pool import cell_rng, chunked_map
from repro.service.handlers import _kernel_validate_bodies
from repro.taskgen.generators import TaskSetGenerator

pytestmark = pytest.mark.kernel

seeds = st.integers(min_value=0, max_value=10_000)

_GEN = TaskSetGenerator(n=12, period_model="loguniform")


def _worst_fit_lists(taskset: TaskSet, m: int):
    loads = [0.0] * m
    lists = [[] for _ in range(m)]
    for task in taskset:
        k = min(range(m), key=lambda i: loads[i])
        lists[k].append(Subtask.whole(task))
        loads[k] += task.utilization
    return lists


def _corpus(seed: int, *, samples: int = 6, m: int = 4):
    """Subtask lists spanning schedulable, overloaded and empty cases."""
    rng = np.random.default_rng(seed)
    lists = [[]]
    for i in range(samples):
        u = float(rng.uniform(0.5, 1.3))
        ts = _GEN.generate(u_norm=u, processors=m, seed=cell_rng(seed, i))
        lists.extend(_worst_fit_lists(ts, m))
    return lists


def _serial_reference(lists):
    """Per-list serial verdicts and exact counter deltas."""
    verdicts, calls, iters = [], [], []
    for sts in lists:
        before = COUNTERS.snapshot()
        verdicts.append(is_schedulable(sts))
        delta = COUNTERS.delta_since(before)
        calls.append(delta["rta_calls"])
        iters.append(delta["rta_iterations"])
    return verdicts, calls, iters


@settings(max_examples=25, deadline=None)
@given(seed=seeds)
def test_batched_bit_identical_to_serial_on_random_corpora(seed):
    lists = _corpus(seed)
    verdicts, calls, iters = _serial_reference(lists)
    before = COUNTERS.snapshot()
    outcome = check_subtask_lists(lists, backend="numpy")
    delta = COUNTERS.delta_since(before)
    assert [bool(v) for v in outcome.verdicts] == verdicts
    assert outcome.rta_calls.tolist() == calls
    assert outcome.rta_iterations.tolist() == iters
    # The batch bills exactly the serial totals (short-circuit included);
    # the honest full-batch cost lives in the krn_* counters instead.
    assert delta["rta_calls"] == sum(calls)
    assert delta["rta_iterations"] == sum(iters)
    assert delta["krn_batches"] == 1
    assert delta["krn_requests"] == len(lists)
    assert delta["krn_lane_iterations"] >= delta["rta_iterations"]


@settings(max_examples=20, deadline=None)
@given(seed=seeds)
def test_responses_and_first_fail_match_serial_lane_by_lane(seed):
    lists = _corpus(seed)
    outcome = check_subtask_lists(
        lists, backend="numpy", collect_responses=True
    )
    for q, sts in enumerate(lists):
        fb = int(outcome.first_fail[q])
        if fb == -2:  # utilization precheck rejected: no lanes analyzed
            assert not outcome.verdicts[q]
            assert outcome.rta_calls[q] == 0
            continue
        ref = response_times(sts)
        got = outcome.responses[q]
        if fb == -1:
            assert bool(outcome.verdicts[q])
            assert ref.schedulable
            assert np.array_equal(got, ref.responses)
        else:
            # First failing lane: the serial short-circuit stops here,
            # so only the prefix is analyzed (and bit-equal).
            assert not outcome.verdicts[q]
            assert np.isnan(ref.responses[fb])
            assert not np.isnan(ref.responses[:fb]).any()
            assert np.array_equal(got[:fb], ref.responses[:fb])
            assert np.isnan(got[fb:]).all()


@settings(max_examples=12, deadline=None)
@given(seed=seeds)
def test_all_backends_agree_exactly(seed):
    lists = _corpus(seed)
    staged = stage_subtask_lists(lists)
    outcomes = [
        evaluate_batch(staged, backend=b, collect_responses=True)
        for b in available_backends()
    ]
    base = outcomes[0]
    for other in outcomes[1:]:
        assert np.array_equal(base.verdicts, other.verdicts)
        assert np.array_equal(base.first_fail, other.first_fail)
        assert np.array_equal(base.rta_calls, other.rta_calls)
        assert np.array_equal(base.rta_iterations, other.rta_iterations)
        for mine, theirs in zip(base.responses, other.responses):
            assert np.array_equal(mine, theirs, equal_nan=True)


@settings(max_examples=15, deadline=None)
@given(seed=seeds)
def test_kernel_agrees_on_real_partitions_with_split_subtasks(seed):
    rng = np.random.default_rng(seed)
    ts = _GEN.generate(
        u_norm=float(rng.uniform(0.6, 0.95)),
        processors=4,
        seed=cell_rng(seed, 0),
    )
    result = partition_rmts(ts, 4)
    if not result.success:
        return
    lists = [proc.subtasks for proc in result.processors]
    serial = [is_schedulable(sts) for sts in lists]
    assert validate_processors(result.processors) == serial
    assert all(serial)  # Lemma 4: success implies schedulable


def test_empty_and_trivial_requests():
    outcome = check_subtask_lists([[]], backend="numpy")
    assert outcome.verdicts.tolist() == [True]
    assert outcome.rta_calls.tolist() == [0]
    assert outcome.first_fail.tolist() == [-1]

    # Overload rejected by the precheck: sentinel -2, zero calls billed.
    heavy = Task(cost=9.0, period=10.0, tid=0)
    light = Task(cost=5.0, period=10.0, tid=1)
    overloaded = [Subtask.whole(heavy), Subtask.whole(light)]
    assert not is_schedulable(overloaded)
    outcome = check_subtask_lists([overloaded], backend="numpy")
    assert outcome.verdicts.tolist() == [False]
    assert outcome.first_fail.tolist() == [-2]
    assert outcome.rta_calls.tolist() == [0]


def test_stage_requests_and_stage_subtask_lists_are_interchangeable():
    lists = _corpus(3)
    requests = [BatchRTARequest.from_subtasks(sts) for sts in lists]
    a = evaluate_batch(stage_subtask_lists(lists), backend="numpy")
    b = evaluate_batch(stage_requests(requests), backend="numpy")
    c = evaluate_batch(requests, backend="numpy")
    for other in (b, c):
        assert np.array_equal(a.verdicts, other.verdicts)
        assert np.array_equal(a.first_fail, other.first_fail)
        assert np.array_equal(a.rta_iterations, other.rta_iterations)


def test_using_and_resolve_backend_semantics():
    assert resolve_backend("python") == "python"
    with using("python"):
        assert resolve_backend() == "python"
        with using("numpy"):
            assert resolve_backend() == "numpy"
        assert resolve_backend() == "python"
    with pytest.raises(ValueError):
        resolve_backend("fortran")
    with pytest.raises(ValueError):
        perf_config.use_kernel_backend("fortran").__enter__()


def test_native_fallback_bills_counter(monkeypatch):
    monkeypatch.setattr(native_mod, "_LOAD_ATTEMPTED", True)
    monkeypatch.setattr(native_mod, "_LIB", None)
    monkeypatch.setattr(native_mod, "_LOAD_ERROR", "forced by test")
    assert not native_available()
    assert "forced by test" in str(native_mod.native_error())
    before = COUNTERS.krn_fallbacks
    assert resolve_backend("native") == "numpy"
    assert COUNTERS.krn_fallbacks == before + 1
    # The fallback is transparent at the evaluate_batch level too.
    outcome = check_subtask_lists(_corpus(5), backend="native")
    assert outcome.backend == "numpy"


@pytest.mark.skipif(not native_available(), reason="no C toolchain")
def test_native_backend_runs_and_bills_native_calls():
    before = COUNTERS.snapshot()
    outcome = check_subtask_lists(_corpus(7), backend="native")
    delta = COUNTERS.delta_since(before)
    assert outcome.backend == "native"
    assert delta["krn_native_calls"] >= 1
    assert delta["krn_fallbacks"] == 0


def _pool_worker(payload, item):
    """Module-level worker: one kernel batch per item (fork-picklable)."""
    lists = _corpus(item)
    outcome = check_subtask_lists(lists, backend="numpy")
    return [bool(v) for v in outcome.verdicts]


def test_counter_deltas_identical_at_any_jobs_level():
    items = [11, 22, 33, 44]
    before = COUNTERS.snapshot()
    serial = chunked_map(_pool_worker, items, jobs=1)
    serial_delta = COUNTERS.delta_since(before)
    before = COUNTERS.snapshot()
    parallel = chunked_map(_pool_worker, items, jobs=2, chunksize=1)
    parallel_delta = COUNTERS.delta_since(before)
    assert serial == parallel
    assert serial_delta == parallel_delta
    assert serial_delta["krn_batches"] == len(items)


def test_kernel_checked_test_preserves_verdicts():
    ts = _GEN.generate(u_norm=0.7, processors=4, seed=cell_rng(9, 0))
    plain = PARTITIONERS["rmts"](ts, 4).success
    checked = kernel_checked_test(PARTITIONERS["rmts"])
    assert checked(ts, 4) == plain
    with perf_config.use_kernel_batching(True):
        assert checked(ts, 4) == plain


def test_kernel_checked_algorithms_registry():
    menu = kernel_checked_algorithms(["rmts", "spa2"])
    assert sorted(menu) == ["rmts", "spa2"]
    assert sorted(kernel_checked_algorithms()) == sorted(PARTITIONERS)
    with pytest.raises(KeyError):
        kernel_checked_algorithms(["rmts", "nope"])


def test_partition_validate_agrees_with_kernel_path():
    ts = _GEN.generate(u_norm=0.75, processors=4, seed=cell_rng(13, 0))
    result = partition_rmts(ts, 4)
    if not result.success:
        pytest.skip("seed produced an unpartitionable set")
    plain = result.validate()
    with perf_config.use_kernel_batching(True):
        batched = result.validate()
    assert plain == batched == []


def test_service_batch_bodies_gain_kernel_validated_flag():
    ts = _GEN.generate(u_norm=0.7, processors=4, seed=cell_rng(17, 0))
    result = partition_rmts(ts, 4)
    if not result.success:
        pytest.skip("seed produced an unpartitionable set")
    body = {"admitted": True, "partition": partition_to_dict(result)}
    rejected = {"admitted": False}
    _kernel_validate_bodies([body, rejected])
    assert body["kernel_validated"] is True
    assert "kernel_validated" not in rejected


def test_krn_counters_are_registered_fields():
    snapshot = COUNTERS.snapshot()
    for name in (
        "krn_batches",
        "krn_requests",
        "krn_lanes",
        "krn_lane_iterations",
        "krn_native_calls",
        "krn_fallbacks",
    ):
        assert name in snapshot
