"""Unit and property tests for MaxSplit (Definitions 2 and 3)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.maxsplit import max_split, max_split_binary, max_split_points
from repro.core.partition import PendingPiece, ProcessorState
from repro.core.rta import is_schedulable
from repro.core.task import Subtask, Task, TaskSet
from repro.taskgen.generators import TaskSetGenerator


def loaded_processor(pairs, start_tid=0):
    proc = ProcessorState(index=0)
    for i, (c, t) in enumerate(pairs):
        proc.add(Subtask.whole(Task(cost=c, period=t, tid=start_tid + i)))
    return proc


def piece_for(cost, period, tid=100):
    return PendingPiece.of(Task(cost=cost, period=period, tid=tid))


class TestMaxSplitBasics:
    def test_empty_processor_accepts_everything(self):
        piece = piece_for(3.0, 10.0)
        assert max_split_points([], piece) == pytest.approx(3.0)
        assert max_split_binary([], piece) == pytest.approx(3.0)

    def test_zero_cost_piece(self):
        proc = loaded_processor([(1, 4)])
        piece = piece_for(1.0, 10.0)
        piece.cost = 0.0
        assert max_split_points(proc.subtasks, piece) == 0.0
        assert max_split_binary(proc.subtasks, piece) == 0.0

    def test_full_processor_gives_zero(self):
        # Processor at U=1 with (2,4),(2,8),(4,16): nothing more fits.
        proc = loaded_processor([(2, 4), (2, 8), (4, 16)], start_tid=1)
        piece = piece_for(5.0, 16.0, tid=0)  # highest priority newcomer
        assert max_split_points(proc.subtasks, piece) == pytest.approx(0.0)
        assert max_split_binary(proc.subtasks, piece) <= 1e-8

    def test_exact_fill_to_capacity(self):
        # (2,4) alone; a newcomer with T=4 can fill to C=2 exactly:
        # afterwards both (2,4)s use the full processor.
        proc = loaded_processor([(2, 4)], start_tid=1)
        piece = piece_for(4.0, 4.0, tid=0)
        c = max_split_points(proc.subtasks, piece)
        assert c == pytest.approx(2.0)

    def test_respects_own_synthetic_deadline(self):
        # No existing tasks, but the piece has a shortened deadline.
        piece = piece_for(8.0, 10.0)
        piece.split_off(3.0)  # deadline now 7, remaining 5
        c = max_split_points([], piece)
        assert c == pytest.approx(5.0)  # still fits: cost 5 <= deadline 7

    def test_deadline_binds_before_cost(self):
        piece = piece_for(9.0, 10.0)
        piece.split_off(4.0)  # deadline 6, remaining 5
        proc = loaded_processor([(3, 6)], start_tid=200)  # lower priority
        # newcomer (tid=100) outranks (3,6); its own deadline is 6.
        c = max_split_points(proc.subtasks, piece)
        # lower-priority task (3,6): needs c <= 3 by its deadline 6.
        assert c == pytest.approx(3.0)

    def test_dispatcher(self):
        proc = loaded_processor([(1, 4)])
        piece = piece_for(10.0, 20.0, tid=50)
        assert max_split(proc.subtasks, piece, method="points") == pytest.approx(
            max_split(proc.subtasks, piece, method="binary"), abs=1e-6
        )
        with pytest.raises(ValueError):
            max_split(proc.subtasks, piece, method="nope")


class TestMaxSplitDefinition:
    """MaxSplit must satisfy Definition 3: feasible, and maximal
    (assigning the result leaves a bottleneck on the processor)."""

    def _assert_definition(self, proc, piece):
        c = max_split_points(proc.subtasks, piece)
        base = piece.as_candidate()

        def with_cost(x):
            return proc.subtasks + [
                Subtask(cost=x, period=base.period, deadline=base.deadline,
                        parent=base.parent, index=base.index, kind=base.kind)
            ]

        if c > 0:
            assert is_schedulable(with_cost(c)), "MaxSplit result infeasible"
        bump = max(1e-6, 1e-6 * piece.cost)
        if c + bump <= piece.cost:
            assert not is_schedulable(with_cost(c + bump)), (
                "MaxSplit not maximal: a larger portion still fits"
            )

    def test_definition_on_crafted_processors(self):
        cases = [
            ([(1, 4), (2, 10)], (6.0, 12.0)),
            ([(2, 5)], (10.0, 11.0)),
            ([(1, 3), (1, 7), (2, 13)], (20.0, 40.0)),
        ]
        for pairs, (cost, period) in cases:
            proc = loaded_processor(pairs, start_tid=101)
            piece = piece_for(cost, period, tid=0)
            self._assert_definition(proc, piece)

    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_definition_on_random_processors(self, seed):
        rng = np.random.default_rng(seed)
        gen = TaskSetGenerator(n=int(rng.integers(2, 7)),
                               period_model="loguniform")
        ts = gen.generate(u_norm=0.5, processors=1, seed=rng)
        proc = ProcessorState(index=0)
        for t in ts:
            # shift tids so the incoming piece (tid=0) has top priority
            proc.add(Subtask.whole(Task(cost=t.cost, period=t.period,
                                        tid=t.tid + 1)))
        period = float(rng.uniform(20, 2000))
        piece = piece_for(float(rng.uniform(0.2, 0.95)) * period, period, tid=0)
        self._assert_definition(proc, piece)


class TestMaxSplitAgreement:
    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_binary_equals_points(self, seed):
        rng = np.random.default_rng(seed)
        gen = TaskSetGenerator(n=int(rng.integers(2, 8)),
                               period_model="loguniform")
        ts = gen.generate(u_norm=0.6, processors=1, seed=rng)
        proc = ProcessorState(index=0)
        for t in ts:
            proc.add(Subtask.whole(t))
        period = float(rng.uniform(20, 2000))
        # tid below / above the existing range exercises both priority
        # cases (tids must be unique — they are priorities).
        tid = -1 if rng.random() < 0.5 else 10_000
        piece = piece_for(float(rng.uniform(0.2, 0.9)) * period, period, tid=tid)
        c_pts = max_split_points(proc.subtasks, piece)
        c_bin = max_split_binary(proc.subtasks, piece)
        assert c_bin == pytest.approx(c_pts, abs=1e-6 * max(1.0, piece.cost))


class TestMaxSplitLowPriorityNewcomer:
    def test_newcomer_below_existing_priorities(self):
        """Phase-3 case: the incoming piece is NOT highest priority."""
        # Existing high-priority heavy task (pre-assigned style).
        proc = loaded_processor([(3, 10)], start_tid=0)
        piece = piece_for(30.0, 40.0, tid=5)  # lower priority than tid 0
        c = max_split_points(proc.subtasks, piece)
        # feasibility: with cost c, R = c + interference of (3,10) <= 40.
        assert c > 0
        base = piece.as_candidate()
        assert is_schedulable(
            proc.subtasks
            + [Subtask(cost=c, period=40.0, deadline=40.0, parent=base.parent,
                       index=1, kind=base.kind)]
        )

    def test_harmonic_fill_through_lower_priority_constraint(self):
        # Existing (2,4) and (2,8); a top-priority (C,8) newcomer can take
        # exactly C=2: the processor then runs at U=1 with harmonic
        # periods, and (2,8)'s response hits its deadline exactly.
        proc = ProcessorState(index=0)
        proc.add(Subtask.whole(Task(cost=2.0, period=4.0, tid=1)))
        proc.add(Subtask.whole(Task(cost=2.0, period=8.0, tid=2)))
        piece = piece_for(4.0, 8.0, tid=0)
        assert max_split_points(proc.subtasks, piece) == pytest.approx(2.0)

    def test_saturated_lower_priority_task_gives_zero(self):
        # (2,4) + (4,8) already uses U=1; any newcomer cost breaks (4,8).
        proc = ProcessorState(index=0)
        proc.add(Subtask.whole(Task(cost=2.0, period=4.0, tid=1)))
        proc.add(Subtask.whole(Task(cost=4.0, period=8.0, tid=2)))
        piece = piece_for(4.0, 8.0, tid=0)
        assert max_split_points(proc.subtasks, piece) == pytest.approx(0.0)
