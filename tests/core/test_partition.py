"""Unit tests for the partitioning framework (processor state, pending
pieces, partition results, validation)."""

import pytest

from repro.core.partition import (
    PartitionResult,
    PendingPiece,
    ProcessorRole,
    ProcessorState,
)
from repro.core.task import Subtask, SubtaskKind, Task, TaskSet


class TestProcessorState:
    def test_utilization_sums_subtasks(self):
        proc = ProcessorState(index=0)
        t = Task(cost=2, period=8, tid=0)
        proc.add(Subtask.whole(t))
        assert proc.utilization == pytest.approx(0.25)

    def test_rejects_zero_cost(self):
        proc = ProcessorState(index=0)
        t = Task(cost=2, period=8, tid=0)
        with pytest.raises(ValueError):
            proc.add(Subtask(cost=0.0, period=8, deadline=8, parent=t))

    def test_schedulable_with(self):
        proc = ProcessorState(index=0)
        proc.add(Subtask.whole(Task(cost=2, period=4, tid=0)))
        ok = Subtask.whole(Task(cost=2, period=8, tid=1))
        too_big = Subtask.whole(Task(cost=5, period=8, tid=1))
        assert proc.schedulable_with(ok)
        assert not proc.schedulable_with(too_big)

    def test_body_subtasks_listing(self):
        proc = ProcessorState(index=0)
        t = Task(cost=4, period=8, tid=0)
        proc.add(Subtask(cost=1, period=8, deadline=8, parent=t,
                         index=1, kind=SubtaskKind.BODY))
        assert len(proc.body_subtasks()) == 1

    def test_highest_priority_subtask(self):
        proc = ProcessorState(index=0)
        assert proc.highest_priority_subtask() is None
        proc.add(Subtask.whole(Task(cost=1, period=8, tid=5)))
        proc.add(Subtask.whole(Task(cost=1, period=4, tid=2)))
        assert proc.highest_priority_subtask().priority == 2


class TestPendingPiece:
    def _piece(self):
        return PendingPiece.of(Task(cost=6.0, period=12.0, tid=0))

    def test_initial_state(self):
        p = self._piece()
        assert p.cost == 6.0
        assert p.index == 1
        assert p.deadline == 12.0
        assert p.utilization == pytest.approx(0.5)

    def test_candidate_whole_when_unsplit(self):
        assert self._piece().as_candidate().kind is SubtaskKind.WHOLE

    def test_finalize_consumes(self):
        p = self._piece()
        sub = p.finalize()
        assert sub.cost == 6.0
        assert p.cost == 0.0

    def test_split_off_body(self):
        p = self._piece()
        body = p.split_off(2.0)
        assert body.kind is SubtaskKind.BODY
        assert body.cost == 2.0
        assert body.index == 1
        assert p.cost == 4.0
        assert p.index == 2
        assert p.deadline == pytest.approx(10.0)  # Lemma 3: T - C_body

    def test_tail_candidate_after_split(self):
        p = self._piece()
        p.split_off(2.0)
        cand = p.as_candidate()
        assert cand.kind is SubtaskKind.TAIL
        assert cand.deadline == pytest.approx(10.0)

    def test_multi_split_accumulates_body_cost(self):
        p = self._piece()
        p.split_off(1.0)
        p.split_off(2.0)
        assert p.index == 3
        assert p.body_cost == pytest.approx(3.0)
        assert p.deadline == pytest.approx(9.0)

    def test_zero_split_returns_none(self):
        p = self._piece()
        assert p.split_off(0.0) is None
        assert p.cost == 6.0
        assert p.index == 1

    def test_split_entire_cost_rejected(self):
        p = self._piece()
        with pytest.raises(ValueError):
            p.split_off(6.0)

    def test_split_above_cost_rejected(self):
        p = self._piece()
        with pytest.raises(ValueError):
            p.split_off(7.0)


def _partition_of(taskset, assignments):
    """Helper: build a PartitionResult from {proc: [subtask...]}.

    Built with the debug sanitizer disarmed: these tests construct
    deliberately malformed partitions to exercise ``validate()`` itself.
    """
    from repro.perf.config import use_debug_invariants

    procs = []
    for q, subs in assignments.items():
        proc = ProcessorState(index=q)
        for s in subs:
            proc.add(s)
        procs.append(proc)
    with use_debug_invariants(False):
        return PartitionResult(
            algorithm="manual",
            taskset=taskset,
            processors=procs,
            success=True,
        )


class TestPartitionValidation:
    def test_valid_unsplit_partition(self):
        ts = TaskSet.from_pairs([(1, 4), (2, 8)])
        part = _partition_of(
            ts,
            {0: [Subtask.whole(ts[0])], 1: [Subtask.whole(ts[1])]},
        )
        assert part.validate() == []

    def test_missing_task_detected(self):
        ts = TaskSet.from_pairs([(1, 4), (2, 8)])
        part = _partition_of(ts, {0: [Subtask.whole(ts[0])]})
        errors = part.validate()
        assert any("unassigned" in e for e in errors)

    def test_valid_split_partition(self):
        ts = TaskSet.from_pairs([(2, 4), (6, 12)])
        t = ts[1]
        body = Subtask(cost=2, period=12, deadline=12, parent=t,
                       index=1, kind=SubtaskKind.BODY)
        tail = Subtask(cost=4, period=12, deadline=10, parent=t,
                       index=2, kind=SubtaskKind.TAIL)
        part = _partition_of(
            ts, {0: [Subtask.whole(ts[0]), tail], 1: [body]}
        )
        assert part.validate() == []
        assert part.split_tids() == [1]
        assert part.processors_hosting(1) == [1, 0]

    def test_cost_mismatch_detected(self):
        ts = TaskSet.from_pairs([(6, 12)])
        t = ts[0]
        body = Subtask(cost=2, period=12, deadline=12, parent=t,
                       index=1, kind=SubtaskKind.BODY)
        tail = Subtask(cost=3, period=12, deadline=10, parent=t,
                       index=2, kind=SubtaskKind.TAIL)
        part = _partition_of(ts, {0: [body], 1: [tail]})
        errors = part.validate()
        assert any("inconsistent" in e for e in errors)

    def test_same_processor_twice_detected(self):
        ts = TaskSet.from_pairs([(6, 12)])
        t = ts[0]
        body = Subtask(cost=2, period=12, deadline=12, parent=t,
                       index=1, kind=SubtaskKind.BODY)
        tail = Subtask(cost=4, period=12, deadline=10, parent=t,
                       index=2, kind=SubtaskKind.TAIL)
        part = _partition_of(ts, {0: [body, tail]})
        errors = part.validate()
        assert any("multiple pieces" in e for e in errors)

    def test_unschedulable_processor_detected(self):
        ts = TaskSet.from_pairs([(3, 4), (3, 8)])
        part = _partition_of(
            ts, {0: [Subtask.whole(ts[0]), Subtask.whole(ts[1])]}
        )
        errors = part.validate()
        assert any("RTA" in e for e in errors)

    def test_body_not_highest_priority_detected(self):
        ts = TaskSet.from_pairs([(1, 4), (6, 12)])
        t = ts[1]
        body = Subtask(cost=2, period=12, deadline=12, parent=t,
                       index=1, kind=SubtaskKind.BODY)
        tail = Subtask(cost=4, period=12, deadline=10, parent=t,
                       index=2, kind=SubtaskKind.TAIL)
        # body shares P0 with a higher-priority whole task -> violation
        part = _partition_of(ts, {0: [Subtask.whole(ts[0]), body], 1: [tail]})
        errors = part.validate()
        assert any("highest-priority" in e for e in errors)


class TestPartitionReports:
    def test_summary_mentions_algorithm(self, harmonic_set):
        part = _partition_of(
            harmonic_set,
            {0: [Subtask.whole(t) for t in list(harmonic_set)[:2]],
             1: [Subtask.whole(t) for t in list(harmonic_set)[2:]]},
        )
        assert "manual" in part.summary()
        report = part.processor_report()
        assert "P0" in report and "P1" in report

    def test_total_assigned_utilization(self, harmonic_set):
        part = _partition_of(
            harmonic_set, {0: [Subtask.whole(t) for t in harmonic_set]}
        )
        assert part.total_assigned_utilization == pytest.approx(1.125)

    def test_response_time_report_keys(self, harmonic_set):
        part = _partition_of(
            harmonic_set, {0: [Subtask.whole(t) for t in harmonic_set]}
        )
        report = part.response_time_report()
        assert set(report) == {0}
