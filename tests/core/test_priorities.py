"""Tests for priority-assignment policies (RM, DM, Audsley's OPA)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.priorities import (
    audsley_assign,
    deadline_monotonic_order,
    rate_monotonic_order,
    schedulable_with_order,
)
from repro.core.rta import is_schedulable
from repro.core.task import Subtask, SubtaskKind, Task, TaskSet
from repro.taskgen.generators import TaskSetGenerator

from tests.conftest import integer_taskset_strategy


def subs(taskset):
    return [Subtask.whole(t) for t in taskset]


class TestStaticOrders:
    def test_rm_order_by_period(self):
        ts = TaskSet.from_pairs([(1, 8), (1, 4), (1, 6)])
        # TaskSet already sorts by period; feed shuffled subtasks
        s = list(reversed(subs(ts)))
        order = rate_monotonic_order(s)
        periods = [s[i].period for i in order]
        assert periods == sorted(periods)

    def test_dm_order_by_deadline(self):
        t0 = Task(cost=1, period=10, tid=0)
        t1 = Task(cost=1, period=8, tid=1)
        tail = Subtask(cost=1, period=10, deadline=3, parent=t0,
                       index=2, kind=SubtaskKind.TAIL)
        s = [Subtask.whole(t1), tail]
        order = deadline_monotonic_order(s)
        assert [s[i].deadline for i in order] == [3, 8]

    def test_rm_equals_dm_for_implicit_deadlines(self):
        gen = TaskSetGenerator(n=8)
        ts = gen.generate(u_norm=0.6, processors=1, seed=0)
        s = subs(ts)
        assert rate_monotonic_order(s) == deadline_monotonic_order(s)


class TestSchedulableWithOrder:
    def test_matches_default_rta(self):
        ts = TaskSet.from_pairs([(2, 4), (2, 8), (4, 16)])
        s = subs(ts)
        assert schedulable_with_order(s, rate_monotonic_order(s))
        assert is_schedulable(s)

    def test_bad_order_can_fail(self):
        ts = TaskSet.from_pairs([(2, 4), (2, 8), (4, 16)])
        s = subs(ts)
        # reverse-RM: the (2,4) task at the bottom misses.
        assert not schedulable_with_order(s, [2, 1, 0])

    def test_rejects_non_permutation(self):
        ts = TaskSet.from_pairs([(1, 4), (1, 8)])
        with pytest.raises(ValueError):
            schedulable_with_order(subs(ts), [0, 0])


class TestAudsley:
    def test_finds_rm_feasible_assignment(self):
        ts = TaskSet.from_pairs([(2, 4), (2, 8), (4, 16)])
        s = subs(ts)
        order = audsley_assign(s)
        assert order is not None
        assert schedulable_with_order(s, order)

    def test_infeasible_returns_none(self):
        ts = TaskSet.from_pairs([(3, 4), (3, 4)])
        assert audsley_assign(subs(ts)) is None

    def test_handles_constrained_deadlines_dm_misses(self):
        """OPA is optimal where DM may not be? For D <= T DM is optimal,
        so here we check agreement: OPA feasible <-> DM feasible."""
        t0 = Task(cost=2, period=10, tid=0)
        t1 = Task(cost=3, period=12, tid=1)
        tail = Subtask(cost=3, period=12, deadline=5, parent=t1,
                       index=2, kind=SubtaskKind.TAIL)
        s = [Subtask.whole(t0), tail]
        dm_ok = schedulable_with_order(s, deadline_monotonic_order(s))
        opa = audsley_assign(s)
        assert (opa is not None) == dm_ok

    @given(integer_taskset_strategy(max_tasks=5, max_period=16))
    @settings(max_examples=40, deadline=None)
    def test_opa_succeeds_iff_rm_does_for_implicit_deadlines(self, ts):
        """RM is optimal for implicit deadlines, so OPA finds an
        assignment exactly when RM order works."""
        s = subs(ts)
        rm_ok = is_schedulable(s)
        opa = audsley_assign(s)
        assert (opa is not None) == rm_ok
        if opa is not None:
            assert schedulable_with_order(s, opa)

    @given(st.integers(0, 5_000))
    @settings(max_examples=20, deadline=None)
    def test_opa_validates_rmts_partitions(self, seed):
        """On every processor of an accepted RM-TS/light partition, the
        inherited priority order is feasible — so OPA must find one."""
        from repro.core.rmts_light import partition_rmts_light

        rng = np.random.default_rng(seed)
        gen = TaskSetGenerator(n=8, period_model="loguniform").light()
        ts = gen.generate(u_norm=float(rng.uniform(0.6, 0.9)),
                          processors=2, seed=rng)
        part = partition_rmts_light(ts, 2)
        if not part.success:
            return
        for proc in part.processors:
            if proc.subtasks:
                assert audsley_assign(proc.subtasks) is not None
