"""Departure-path bit-identity: removing a task from live partition
state must leave exactly the state a survivor-only history would have
produced (the churn simulator's correctness hinges on this)."""

import pytest

from repro.core.partition import (
    PartitionResult,
    ProcessorRole,
    ProcessorState,
)
from repro.core.rmts import partition_rmts, readmit_task
from repro.core.task import Subtask, SubtaskKind, Task, TaskSet
from repro.taskgen.generators import TaskSetGenerator


def _taskset(seed=7, n=12, u_norm=0.7, processors=4):
    return TaskSetGenerator(n=n).generate(
        u_norm=u_norm, processors=processors, seed=seed
    )


def _fresh_from_survivors(proc):
    """A processor that only ever admitted *proc*'s current subtasks,
    in the same list order."""
    fresh = ProcessorState(index=proc.index)
    for sub in proc.subtasks:
        fresh.add(sub)
    return fresh


class TestProcessorRemoveParent:
    def test_util_bit_identical_to_survivor_history(self):
        ts = _taskset()
        result = partition_rmts(ts, 4)
        victim = max(
            (t for t in ts), key=lambda t: t.utilization
        ).tid
        for proc in result.processors:
            proc.remove_parent(victim)
            fresh = _fresh_from_survivors(proc)
            # Exact float equality, not approx: both sides accumulate
            # left-to-right over the same list.
            assert proc._util == fresh._util
            assert proc.utilization == fresh.utilization

    def test_admission_probes_match_survivor_history(self):
        ts = _taskset(seed=11)
        result = partition_rmts(ts, 4)
        victim = ts[0].tid
        probe = Subtask.whole(Task(cost=5.0, period=100.0, tid=9999))
        for proc in result.processors:
            proc.remove_parent(victim)
            fresh = _fresh_from_survivors(proc)
            assert proc.schedulable_with(probe) == fresh.schedulable_with(
                probe
            )
            assert proc.is_schedulable() == fresh.is_schedulable()

    def test_remove_unknown_tid_is_noop(self):
        ts = _taskset()
        result = partition_rmts(ts, 4)
        proc = result.processors[0]
        before = list(proc.subtasks)
        before_util = proc._util
        assert proc.remove_parent(10**9) == 0
        assert proc.subtasks == before
        assert proc._util == before_util

    def test_removing_body_unfreezes_full_processor(self):
        task = Task(cost=30.0, period=100.0, tid=1)
        other = Task(cost=10.0, period=200.0, tid=2)
        proc = ProcessorState(index=0, full=True)
        proc.add(Subtask(cost=20.0, period=100.0, deadline=40.0,
                         parent=task, index=1, kind=SubtaskKind.BODY))
        proc.add(Subtask.whole(other))
        assert proc.remove_parent(1) == 1
        assert not proc.full
        assert [s.parent.tid for s in proc.subtasks] == [2]

    def test_removing_pre_assigned_task_releases_processor(self):
        task = Task(cost=40.0, period=100.0, tid=3)
        proc = ProcessorState(
            index=0,
            role=ProcessorRole.PRE_ASSIGNED,
            pre_assigned_tid=3,
        )
        proc.add(Subtask.whole(task))
        proc.remove_parent(3)
        assert proc.role is ProcessorRole.NORMAL
        assert proc.pre_assigned_tid is None


class TestPartitionRemoveReadmit:
    def test_remove_records_and_validate_skips_departed(self):
        ts = _taskset()
        result = partition_rmts(ts, 4)
        victim = ts[2].tid
        pieces = result.remove_task(victim)
        assert pieces >= 1
        assert result.removed_tids() == [victim]
        assert result.validate() == []
        assert result.processors_hosting(victim) == []

    def test_remove_is_idempotent_in_the_record(self):
        ts = _taskset()
        result = partition_rmts(ts, 4)
        victim = ts[2].tid
        result.remove_task(victim)
        assert result.remove_task(victim) == 0
        assert result.removed_tids() == [victim]

    def test_readmit_round_trip_restores_validity(self):
        ts = _taskset(seed=3)
        result = partition_rmts(ts, 4)
        victim = ts[1]
        result.remove_task(victim.tid)
        host = readmit_task(result, victim)
        assert host is not None
        assert result.removed_tids() == []
        assert result.validate() == []
        assert result.processors_hosting(victim.tid) == [host]

    @pytest.mark.parametrize("seed", [0, 3, 11, 19])
    def test_round_trip_matches_fresh_survivor_partition_util(self, seed):
        """Removing every task of one 'tenant' must leave per-processor
        utilizations bit-identical to partitions that only ever saw the
        survivors (list-order float accumulation on both sides)."""
        ts = _taskset(seed=seed)
        result = partition_rmts(ts, 4)
        departed = {ts[0].tid, ts[1].tid}
        for tid in sorted(departed):
            result.remove_task(tid)
        assert result.validate() == []
        for proc in result.processors:
            fresh = _fresh_from_survivors(proc)
            assert proc._util == fresh._util
            assert proc.rta_context().schedulable == (
                fresh.rta_context().schedulable
            )

    def test_readmit_skips_full_and_dedicated_processors(self):
        heavy = Task(cost=90.0, period=100.0, tid=1)
        result = PartitionResult(
            algorithm="fixture",
            taskset=TaskSet([heavy]),
            processors=[
                ProcessorState(index=0, role=ProcessorRole.DEDICATED),
                ProcessorState(index=1, full=True),
            ],
            success=True,
        )
        result.info["removed_tids"] = [1]
        assert readmit_task(result, heavy) is None
        assert result.removed_tids() == [1]
