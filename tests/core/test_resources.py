"""Tests for the resource-sharing subsystem (PCP blocking, partitioning)."""

import numpy as np
import pytest

from repro.core.baselines.partitioned import partition_no_split
from repro.core.resources import (
    CriticalSection,
    ResourceModel,
    partition_no_split_with_resources,
    pcp_blocking_terms,
    random_resource_model,
)
from repro.core.task import Subtask, TaskSet
from repro.taskgen.generators import TaskSetGenerator


def subs(taskset):
    return [Subtask.whole(t) for t in taskset]


class TestResourceModel:
    def test_add_and_query(self):
        model = ResourceModel()
        model.add(0, "R0", 1.0)
        model.add(1, "R0", 2.0)
        model.add(1, "R1", 0.5)
        assert model.resources() == ["R0", "R1"]
        assert model.users_of("R0") == [0, 1]
        assert model.max_section_of(1) == 2.0
        assert model.total_section_of(1) == 2.5

    def test_section_validation(self):
        with pytest.raises(ValueError):
            CriticalSection(tid=0, resource="R", length=0.0)

    def test_validate_against_taskset(self):
        ts = TaskSet.from_pairs([(2, 10), (3, 10)])
        model = ResourceModel()
        model.add(0, "R0", 1.0)
        assert model.validate_against(ts) == []
        model.add(0, "R0", 5.0)  # total 6 > C=2
        assert model.validate_against(ts)

    def test_unknown_tid_flagged(self):
        ts = TaskSet.from_pairs([(2, 10)])
        model = ResourceModel()
        model.add(99, "R0", 1.0)
        assert any("unknown" in e for e in model.validate_against(ts))


class TestPcpBlockingTerms:
    def test_no_resources_no_blocking(self, harmonic_set):
        blocking = pcp_blocking_terms(subs(harmonic_set), ResourceModel())
        assert blocking == [0.0] * len(harmonic_set)

    def test_high_priority_blocked_by_low_sharer(self):
        ts = TaskSet.from_pairs([(1, 4), (2, 8)])
        model = ResourceModel()
        model.add(0, "R0", 0.25)
        model.add(1, "R0", 0.5)
        blocking = pcp_blocking_terms(subs(ts), model)
        # tau0 blocked by tau1's section; tau1 blocked by nobody below it
        assert blocking == [0.5, 0.0]

    def test_ceiling_blocks_middle_task(self):
        # R0 shared by tau0 and tau2: ceiling = prio(tau0).  tau1 does not
        # use R0 but can still be blocked by tau2's section (ceiling above
        # tau1's priority).
        ts = TaskSet.from_pairs([(1, 4), (1, 8), (2, 16)])
        model = ResourceModel()
        model.add(0, "R0", 0.2)
        model.add(2, "R0", 0.7)
        blocking = pcp_blocking_terms(subs(ts), model)
        assert blocking[0] == pytest.approx(0.7)
        assert blocking[1] == pytest.approx(0.7)
        assert blocking[2] == 0.0

    def test_low_ceiling_does_not_block_high_task(self):
        # R0 shared only by tau1 and tau2 (ceiling = prio(tau1)): tau0 is
        # never blocked.
        ts = TaskSet.from_pairs([(1, 4), (1, 8), (2, 16)])
        model = ResourceModel()
        model.add(1, "R0", 0.3)
        model.add(2, "R0", 0.6)
        blocking = pcp_blocking_terms(subs(ts), model)
        assert blocking[0] == 0.0
        assert blocking[1] == pytest.approx(0.6)

    def test_remote_sections_do_not_block(self):
        # only tau2's piece is local; tau0 elsewhere -> no local ceiling
        ts = TaskSet.from_pairs([(1, 4), (1, 8), (2, 16)])
        model = ResourceModel()
        model.add(0, "R0", 0.2)
        model.add(2, "R0", 0.7)
        local = [subs(ts)[1], subs(ts)[2]]  # tau1, tau2 on this processor
        blocking = pcp_blocking_terms(local, model)
        # ceiling of R0 locally = prio(tau2) (only local user), which is
        # below tau1 -> tau1 unblocked.
        assert blocking == [0.0, 0.0]


class TestPartitionWithResources:
    def test_zero_sections_equal_plain(self):
        gen = TaskSetGenerator(n=10, period_model="loguniform")
        for seed in range(6):
            ts = gen.generate(u_norm=0.8, processors=3, seed=seed)
            plain = partition_no_split(ts, 3).success
            with_res = partition_no_split_with_resources(
                ts, 3, ResourceModel()
            ).success
            assert plain == with_res

    def test_blocking_reduces_acceptance(self):
        gen = TaskSetGenerator(n=8, period_model="loguniform")
        worse = 0
        for seed in range(12):
            ts = gen.generate(u_norm=0.85, processors=2, seed=seed)
            rng = np.random.default_rng(seed)
            model = random_resource_model(
                ts, rng, num_resources=2, access_probability=0.8,
                section_fraction=0.4,
            )
            plain = partition_no_split(ts, 2).success
            loaded = partition_no_split_with_resources(ts, 2, model).success
            if plain and not loaded:
                worse += 1
            # blocking can never *help*
            assert not (loaded and not plain)
        assert worse >= 1  # heavy sharing must hurt at least once

    def test_invalid_model_rejected(self, harmonic_set):
        model = ResourceModel()
        model.add(0, "R0", 100.0)
        with pytest.raises(ValueError):
            partition_no_split_with_resources(harmonic_set, 2, model)

    def test_successful_partitions_record_info(self, harmonic_set):
        model = ResourceModel()
        model.add(0, "R0", 0.1)
        model.add(2, "R0", 0.2)
        part = partition_no_split_with_resources(harmonic_set, 2, model)
        assert part.success
        assert part.info["resources"] == ["R0"]


class TestRandomResourceModel:
    def test_sections_fit_budget(self):
        gen = TaskSetGenerator(n=10)
        ts = gen.generate(u_norm=0.7, processors=2, seed=1)
        rng = np.random.default_rng(0)
        model = random_resource_model(ts, rng, section_fraction=0.3)
        assert model.validate_against(ts) == []

    def test_zero_probability_empty(self):
        gen = TaskSetGenerator(n=5)
        ts = gen.generate(u_norm=0.5, processors=1, seed=0)
        rng = np.random.default_rng(0)
        model = random_resource_model(ts, rng, access_probability=0.0)
        assert model.sections == []

    def test_bad_args_rejected(self, harmonic_set, rng):
        with pytest.raises(ValueError):
            random_resource_model(harmonic_set, rng, access_probability=2.0)
        with pytest.raises(ValueError):
            random_resource_model(harmonic_set, rng, num_resources=0)
