"""Unit, integration and property tests for RM-TS (Section V)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bounds import (
    ConstantBound,
    HarmonicChainBound,
    LiuLaylandBound,
    light_task_threshold,
    ll_bound,
    rmts_bound_cap,
)
from repro.core.partition import ProcessorRole
from repro.core.rmts import (
    partition_rmts,
    pre_assign_condition,
    resolve_bound_value,
)
from repro.core.task import Task, TaskSet
from repro.taskgen.generators import TaskSetGenerator


class TestResolveBoundValue:
    def test_default_is_ll(self, general_set):
        assert resolve_bound_value(general_set, None) == pytest.approx(
            min(ll_bound(len(general_set)), rmts_bound_cap(len(general_set)))
        )

    def test_cap_applied(self, harmonic_set):
        v = resolve_bound_value(harmonic_set, ConstantBound(1.0))
        assert v == pytest.approx(rmts_bound_cap(len(harmonic_set)))

    def test_cap_disabled(self, harmonic_set):
        v = resolve_bound_value(harmonic_set, ConstantBound(1.0), cap=False)
        assert v == 1.0

    def test_float_bound_accepted(self, harmonic_set):
        assert resolve_bound_value(harmonic_set, 0.75) == pytest.approx(0.75)

    def test_invalid_bound_rejected(self, harmonic_set):
        with pytest.raises(ValueError):
            resolve_bound_value(harmonic_set, 0.0)
        with pytest.raises(ValueError):
            resolve_bound_value(harmonic_set, 1.2)


class TestPreAssignCondition:
    def test_small_lower_priority_utilization_passes(self):
        assert pre_assign_condition(0.5, 4, 0.8)  # 0.5 <= 3*0.8

    def test_large_lower_priority_utilization_fails(self):
        assert not pre_assign_condition(3.0, 4, 0.8)  # 3.0 > 2.4

    def test_no_normal_processors_never_passes(self):
        assert not pre_assign_condition(0.1, 0, 0.8)

    def test_single_processor_requires_zero(self):
        assert pre_assign_condition(0.0, 1, 0.8)
        assert not pre_assign_condition(0.01, 1, 0.8)


class TestBasicPartitioning:
    def test_simple_success(self, harmonic_set):
        result = partition_rmts(harmonic_set, 2)
        assert result.success
        assert result.validate() == []

    def test_heavy_task_pre_assigned(self):
        # One heavy task with little lower-priority load -> pre-assigned.
        ts = TaskSet.from_pairs([(6, 10), (1, 20), (1, 40)])
        result = partition_rmts(ts, 2)
        assert result.success
        assert result.info["pre_assigned_tids"] == [0]
        pre = [p for p in result.processors
               if p.role is ProcessorRole.PRE_ASSIGNED]
        assert len(pre) == 1

    def test_dedicated_processor_for_over_bound_task(self):
        # U = 0.95 exceeds any capped bound -> dedicated processor.
        ts = TaskSet.from_pairs([(9.5, 10), (1, 20), (1, 40)])
        result = partition_rmts(ts, 2)
        assert result.success
        assert result.info["dedicated_tids"] == [0]
        ded = [p for p in result.processors
               if p.role is ProcessorRole.DEDICATED]
        assert len(ded) == 1
        assert ded[0].full

    def test_dedication_disabled(self):
        ts = TaskSet.from_pairs([(9.5, 10), (1, 20), (1, 40)])
        result = partition_rmts(ts, 2, dedicate_over_bound=False)
        assert result.success
        assert result.info["dedicated_tids"] == []

    def test_too_many_over_bound_tasks_fail(self):
        ts = TaskSet.from_pairs([(9, 10), (9, 10), (9, 10)])
        result = partition_rmts(ts, 2)
        assert not result.success

    def test_rejects_zero_processors(self, harmonic_set):
        with pytest.raises(ValueError):
            partition_rmts(harmonic_set, 0)


class TestPreAssignmentMechanics:
    def test_at_most_m_pre_assigned(self):
        # Many heavy tasks with tiny lower-priority load.
        tasks = [(5, 10)] * 6 + [(0.1, 100)]
        ts = TaskSet.from_pairs(tasks)
        result = partition_rmts(ts, 3)
        assert len(result.info["pre_assigned_tids"]) <= 3

    def test_pre_assigned_processor_indices_minimal_first(self):
        ts = TaskSet.from_pairs([(6, 10), (6, 12), (0.5, 50), (0.5, 100)])
        result = partition_rmts(ts, 4)
        pre_procs = [
            p.index
            for p in result.processors
            if p.role is ProcessorRole.PRE_ASSIGNED
        ]
        # pre-assignment picks minimal-index normal processors first
        assert pre_procs == sorted(pre_procs)
        assert pre_procs and pre_procs[0] == 0

    def test_pre_assigned_task_lowest_priority_on_success(self):
        gen = TaskSetGenerator(n=8, period_model="loguniform").with_cap(0.8)
        for seed in range(10):
            ts = gen.generate(u_norm=0.7, processors=4, seed=seed)
            result = partition_rmts(ts, 4)
            if not result.success:
                continue
            for proc in result.processors:
                if proc.role is not ProcessorRole.PRE_ASSIGNED:
                    continue
                lowest = max(s.priority for s in proc.subtasks)
                assert proc.pre_assigned_tid == lowest

    def test_light_set_has_no_pre_assignment(self):
        gen = TaskSetGenerator(n=12, period_model="loguniform").light()
        ts = gen.generate(u_norm=0.8, processors=4, seed=1)
        result = partition_rmts(ts, 4)
        assert result.info["pre_assigned_tids"] == []


class TestUtilizationBoundTheorem:
    """Any task set with U_M <= min(Lambda, 2Theta/(1+Theta)) partitions."""

    @given(st.integers(0, 5_000))
    @settings(max_examples=25, deadline=None)
    def test_general_sets_at_capped_ll_bound(self, seed):
        m, n = 2, 8
        gen = TaskSetGenerator(n=n, period_model="loguniform")
        lam = min(ll_bound(n), rmts_bound_cap(n))
        ts = gen.generate(u_norm=lam, processors=m, seed=seed)
        result = partition_rmts(ts, m, bound=LiuLaylandBound())
        assert result.success, "RM-TS bound violated (L&L instantiation)"
        assert result.validate() == []

    @given(st.integers(0, 5_000))
    @settings(max_examples=25, deadline=None)
    def test_harmonic_sets_at_cap(self, seed):
        m, n = 2, 8
        gen = TaskSetGenerator(
            n=n, period_model="harmonic", tmin=8.0
        ).with_cap(0.8)
        lam = rmts_bound_cap(n)  # HC bound 1.0 capped
        ts = gen.generate(u_norm=lam, processors=m, seed=seed)
        result = partition_rmts(ts, m, bound=HarmonicChainBound())
        assert result.success, "RM-TS bound violated (harmonic instantiation)"

    @given(st.integers(0, 5_000))
    @settings(max_examples=15, deadline=None)
    def test_heavy_laden_sets_at_bound(self, seed):
        """Sets with deliberately heavy tasks still meet the bound."""
        m, n = 2, 4
        gen = TaskSetGenerator(n=n, period_model="loguniform").with_cap(0.8)
        lam = min(ll_bound(n), rmts_bound_cap(n))
        ts = gen.generate(u_norm=lam, processors=m, seed=seed)
        result = partition_rmts(ts, m)
        assert result.success


class TestPhaseThree:
    # The heavy task (11,20) pre-assigns (tiny lower-priority load); three
    # higher-priority tasks overflow the single remaining normal processor,
    # so the overflow is split and its tail lands on the pre-assigned
    # processor in phase 3.
    PHASE3_SET = [(4, 8), (3, 9), (3, 10), (11, 20), (1, 100)]

    def test_remaining_tasks_fill_pre_assigned_processors(self):
        ts = TaskSet.from_pairs(self.PHASE3_SET)
        result = partition_rmts(ts, 2)
        assert result.success
        assert result.validate() == []
        pre = [p for p in result.processors
               if p.role is ProcessorRole.PRE_ASSIGNED]
        assert len(pre) == 1
        # phase 3 placed extra work next to the pre-assigned task
        assert len(pre[0].subtasks) > 1

    def test_phase3_split_produces_valid_tail(self):
        ts = TaskSet.from_pairs(self.PHASE3_SET)
        result = partition_rmts(ts, 2)
        assert result.split_tids() == [0]
        views = result.split_views()
        assert views[0].is_consistent()

    def test_phase3_preserves_pre_assigned_lowest_priority(self):
        ts = TaskSet.from_pairs(self.PHASE3_SET)
        result = partition_rmts(ts, 2)
        pre = next(p for p in result.processors
                   if p.role is ProcessorRole.PRE_ASSIGNED)
        assert pre.pre_assigned_tid == max(s.priority for s in pre.subtasks)

    def test_phase3_selects_largest_index_first(self):
        # Two pre-assigned processors; phase-3 overflow must land on the
        # one with the larger index (hosting the lower-priority task).
        ts = TaskSet.from_pairs(
            [(4, 8), (3, 9), (3, 10), (11, 20), (13, 25), (0.5, 100)]
        )
        result = partition_rmts(ts, 3)
        pre = sorted(
            (p for p in result.processors
             if p.role is ProcessorRole.PRE_ASSIGNED),
            key=lambda p: p.index,
        )
        if len(pre) < 2:
            pytest.skip("scenario did not pre-assign two tasks")
        extra_low = len(pre[0].subtasks) - 1
        extra_high = len(pre[-1].subtasks) - 1
        assert extra_high >= extra_low


class TestRandomizedValidation:
    @given(st.integers(0, 5_000))
    @settings(max_examples=20, deadline=None)
    def test_partitions_always_validate(self, seed):
        rng = np.random.default_rng(seed)
        m = int(rng.integers(2, 5))
        n = int(rng.integers(m, 3 * m))
        gen = TaskSetGenerator(n=n, period_model="loguniform")
        ts = gen.generate(
            u_norm=float(rng.uniform(0.4, 0.95)), processors=m, seed=rng
        )
        result = partition_rmts(ts, m)
        if result.success:
            assert result.validate() == []

    @given(st.integers(0, 5_000))
    @settings(max_examples=20, deadline=None)
    def test_rmts_accepts_whenever_light_variant_does(self, seed):
        """On light sets RM-TS degenerates to RM-TS/light behaviour."""
        from repro.core.rmts_light import partition_rmts_light

        rng = np.random.default_rng(seed)
        m = 3
        gen = TaskSetGenerator(n=9, period_model="loguniform").light()
        ts = gen.generate(
            u_norm=float(rng.uniform(0.5, 0.9)), processors=m, seed=rng
        )
        light = partition_rmts_light(ts, m)
        full = partition_rmts(ts, m)
        assert full.success == light.success
