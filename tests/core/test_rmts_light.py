"""Unit, integration and property tests for RM-TS/light (Section IV)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bounds import (
    HarmonicChainBound,
    light_task_threshold,
    ll_bound,
)
from repro.core.rmts_light import is_light_task_set, partition_rmts_light
from repro.core.task import SubtaskKind, Task, TaskSet
from repro.taskgen.generators import TaskSetGenerator


class TestIsLightTaskSet:
    def test_light_set(self):
        ts = TaskSet.from_pairs([(1, 4), (2, 8), (3, 12)])  # max U = 0.25
        assert is_light_task_set(ts)

    def test_heavy_task_detected(self):
        ts = TaskSet.from_pairs([(3, 4), (1, 8)])
        assert not is_light_task_set(ts)

    def test_threshold_uses_set_size(self):
        # U = 0.42 is heavy for large N (threshold -> 0.409) but light for
        # N=1 (threshold = 0.5).
        single = TaskSet.from_pairs([(4.2, 10)])
        assert is_light_task_set(single)


class TestBasicPartitioning:
    def test_trivial_fits_one_processor(self):
        ts = TaskSet.from_pairs([(1, 4), (1, 8)])
        result = partition_rmts_light(ts, 1)
        assert result.success
        assert result.validate() == []

    def test_needs_more_than_capacity_fails(self):
        ts = TaskSet.from_pairs([(3, 4), (3, 4), (3, 4)])  # U = 2.25
        result = partition_rmts_light(ts, 2)
        assert not result.success
        assert result.unassigned_tids

    def test_split_occurs_when_needed(self, tight_harmonic_set):
        result = partition_rmts_light(tight_harmonic_set, 2)
        assert result.success
        assert result.validate() == []

    def test_rejects_zero_processors(self, harmonic_set):
        with pytest.raises(ValueError):
            partition_rmts_light(harmonic_set, 0)

    def test_algorithm_label(self, harmonic_set):
        result = partition_rmts_light(harmonic_set, 2)
        assert result.algorithm.startswith("RM-TS/light")

    def test_info_fields(self, harmonic_set):
        result = partition_rmts_light(harmonic_set, 2)
        assert "light" in result.info
        assert result.info["assignment_order"] == "increasing"


class TestAssignmentOrderInvariants:
    def test_bodies_highest_priority_on_host(self):
        """Lemma 2: with increasing-priority assignment, every body subtask
        has the highest priority on its host processor."""
        gen = TaskSetGenerator(n=12, period_model="loguniform").light()
        for seed in range(8):
            ts = gen.generate(u_norm=0.92, processors=4, seed=seed)
            result = partition_rmts_light(ts, 4)
            if not result.success:
                continue
            for proc in result.processors:
                for body in proc.body_subtasks():
                    top = proc.highest_priority_subtask()
                    assert top is body

    def test_at_most_one_body_per_processor(self):
        gen = TaskSetGenerator(n=16, period_model="loguniform").light()
        for seed in range(8):
            ts = gen.generate(u_norm=0.95, processors=4, seed=seed)
            result = partition_rmts_light(ts, 4)
            for proc in result.processors:
                assert len(proc.body_subtasks()) <= 1

    def test_full_processors_only_after_split_or_exhaustion(self):
        ts = TaskSet.from_pairs([(1, 4), (1, 8)])
        result = partition_rmts_light(ts, 4)
        assert all(not p.full for p in result.processors)


class TestUtilizationBoundTheorem:
    """Theorem 8: light sets with U_M <= Lambda(tau) always partition."""

    @given(st.integers(0, 5_000))
    @settings(max_examples=25, deadline=None)
    def test_light_harmonic_sets_at_full_utilization(self, seed):
        m = 2
        n = 8
        gen = TaskSetGenerator(n=n, period_model="harmonic", tmin=8.0).light()
        ts = gen.generate(u_norm=1.0, processors=m, seed=seed)
        assert is_light_task_set(ts)
        assert HarmonicChainBound().value(ts) == pytest.approx(1.0)
        result = partition_rmts_light(ts, m)
        assert result.success, "Theorem 8 violated (Lambda = 100%)"
        assert result.validate() == []

    @given(st.integers(0, 5_000))
    @settings(max_examples=25, deadline=None)
    def test_light_general_sets_at_ll_bound(self, seed):
        m = 2
        n = 8
        gen = TaskSetGenerator(n=n, period_model="loguniform").light()
        ts = gen.generate(u_norm=ll_bound(n), processors=m, seed=seed)
        result = partition_rmts_light(ts, m)
        assert result.success, "Theorem 8 violated (Lambda = Theta(N))"


class TestFailureAccounting:
    def test_failure_reports_unassigned_and_full(self):
        # Light per-task but far too much total utilization.
        ts = TaskSet.from_pairs([(2, 8)] * 12)  # U = 3.0 on 2 procs
        result = partition_rmts_light(ts, 2)
        assert not result.success
        assert all(p.full for p in result.processors)
        # the assigned utilization should be near capacity of 2 processors
        assert result.total_assigned_utilization > 1.8

    def test_failed_partition_processors_still_schedulable(self):
        ts = TaskSet.from_pairs([(2, 8)] * 12)
        result = partition_rmts_light(ts, 2)
        for proc in result.processors:
            assert proc.is_schedulable()


class TestAblationKnobs:
    def test_unknown_order_rejected(self, harmonic_set):
        with pytest.raises(ValueError):
            partition_rmts_light(harmonic_set, 2, assignment_order="sideways")

    def test_unknown_placement_rejected(self, harmonic_set):
        with pytest.raises(ValueError):
            partition_rmts_light(harmonic_set, 2, placement="random")

    def test_decreasing_order_runs(self, harmonic_set):
        result = partition_rmts_light(
            harmonic_set, 2, assignment_order="decreasing"
        )
        assert result.info["assignment_order"] == "decreasing"

    def test_first_fit_concentrates_load(self):
        ts = TaskSet.from_pairs([(1, 10), (1, 12), (1, 14)])
        wf = partition_rmts_light(ts, 3, placement="worst_fit")
        ff = partition_rmts_light(ts, 3, placement="first_fit")
        wf_loads = sorted(p.utilization for p in wf.processors)
        ff_loads = sorted(p.utilization for p in ff.processors)
        assert max(ff_loads) >= max(wf_loads)
        # worst-fit spreads: every processor gets one task
        assert all(u > 0 for u in wf_loads)


class TestRandomizedValidation:
    @given(st.integers(0, 5_000))
    @settings(max_examples=20, deadline=None)
    def test_partitions_always_validate(self, seed):
        rng = np.random.default_rng(seed)
        m = int(rng.integers(2, 5))
        n = int(rng.integers(m, 4 * m))
        gen = TaskSetGenerator(n=n, period_model="loguniform")
        ts = gen.generate(
            u_norm=float(rng.uniform(0.4, 1.0)), processors=m, seed=rng
        )
        result = partition_rmts_light(ts, m)
        if result.success:
            assert result.validate() == []
