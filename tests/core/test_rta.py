"""Unit and property tests for exact response-time analysis."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.rta import (
    first_failure,
    hyperbolic_bound_holds,
    is_schedulable,
    liu_layland_test_holds,
    response_time,
    response_times,
    utilization_headroom,
)
from repro.core.task import Subtask, SubtaskKind, Task, TaskSet

from tests.conftest import integer_taskset_strategy, taskset_strategy


def subs(taskset):
    return [Subtask.whole(t) for t in taskset]


class TestResponseTime:
    def test_highest_priority_response_is_cost(self):
        r = response_time(3.0, np.array([]), np.array([]), 10.0)
        assert r == pytest.approx(3.0)

    def test_classic_example(self):
        # tasks (1,4), (2,8): R2 = 2 + ceil(R2/4)*1 -> R2 = 3? iterate:
        # R = 2+1=3 -> ceil(3/4)=1 -> 3. Fixed point 3.
        r = response_time(2.0, np.array([1.0]), np.array([4.0]), 8.0)
        assert r == pytest.approx(3.0)

    def test_multiple_preemptions(self):
        # (2,5) interfering with C=4, D=T=14:
        # R = 4+2=6 -> 4+ceil(6/5)*2=8 -> 4+ceil(8/5)*2=8. Fixed point 8.
        r = response_time(4.0, np.array([2.0]), np.array([5.0]), 14.0)
        assert r == pytest.approx(8.0)

    def test_unschedulable_returns_none(self):
        # (3,5) hp + C=3 with D=5 -> R = 3+3=6 > 5.
        assert response_time(3.0, np.array([3.0]), np.array([5.0]), 5.0) is None

    def test_exact_boundary_schedulable(self):
        # (2,4),(2,8): R2 = 2 + ceil(R/4)*2; R=4 -> 2+2=4. Meets D=4 exactly?
        r = response_time(2.0, np.array([2.0]), np.array([4.0]), 4.0)
        assert r == pytest.approx(4.0)

    def test_zero_cost(self):
        assert response_time(0.0, np.array([1.0]), np.array([4.0]), 4.0) == 0.0

    def test_full_utilization_harmonic_chain(self):
        # (2,4),(2,8),(4,16): U=1, harmonic, all schedulable under RMS.
        r = response_time(4.0, np.array([2.0, 2.0]), np.array([4.0, 8.0]), 16.0)
        assert r == pytest.approx(16.0)


class TestIsSchedulable:
    def test_empty_processor(self):
        assert is_schedulable([])

    def test_harmonic_full_utilization(self):
        ts = TaskSet.from_pairs([(2, 4), (2, 8), (4, 16)])
        assert is_schedulable(subs(ts))

    def test_overload_rejected(self):
        ts = TaskSet.from_pairs([(3, 4), (3, 8)])
        assert not is_schedulable(subs(ts))

    def test_total_utilization_above_one_rejected_fast(self):
        ts = TaskSet.from_pairs([(5, 8), (5, 8), (1, 8)])
        assert not is_schedulable(subs(ts))

    def test_liu_layland_counterexample_structure(self):
        # Two tasks at U = 0.5 each with non-harmonic periods miss.
        ts = TaskSet.from_pairs([(2.5, 5), (3.5, 7)])
        assert not is_schedulable(subs(ts))

    def test_synthetic_deadline_respected(self):
        t0 = Task(cost=2.0, period=4.0, tid=0)
        t1 = Task(cost=2.0, period=8.0, tid=1)
        tail = Subtask(cost=2.0, period=8.0, deadline=3.0, parent=t1,
                       index=2, kind=SubtaskKind.TAIL)
        # R(tail) = 2 + 2 = 4 > 3 -> unschedulable with synthetic deadline,
        # though fine with the full period.
        assert not is_schedulable([Subtask.whole(t0), tail])
        assert is_schedulable([Subtask.whole(t0), Subtask.whole(t1)])


class TestResponseTimes:
    def test_all_responses_reported(self):
        ts = TaskSet.from_pairs([(1, 4), (2, 8), (2, 16)])
        result = response_times(subs(ts))
        assert result.schedulable
        assert result.responses == pytest.approx([1.0, 3.0, 6.0])

    def test_slacks(self):
        ts = TaskSet.from_pairs([(1, 4), (2, 8)])
        result = response_times(subs(ts))
        assert result.slacks == pytest.approx([3.0, 5.0])

    def test_unschedulable_marked_nan(self):
        ts = TaskSet.from_pairs([(3, 4), (3, 8)])
        result = response_times(subs(ts))
        assert not result.schedulable
        assert np.isnan(result.responses[1])


class TestFirstFailure:
    def test_none_when_schedulable(self):
        ts = TaskSet.from_pairs([(2, 4), (2, 8), (4, 16)])
        assert first_failure(subs(ts)) is None

    def test_identifies_failing_subtask(self):
        ts = TaskSet.from_pairs([(3, 4), (3, 8)])
        failing = first_failure(subs(ts))
        assert failing is not None
        assert failing.parent.tid == 1

    def test_empty(self):
        assert first_failure([]) is None


class TestSufficientTests:
    def test_hyperbolic_weaker_than_exact(self, harmonic_set):
        # hyperbolic accepts => exact RTA accepts (on implicit deadlines)
        if hyperbolic_bound_holds(subs(harmonic_set)):
            assert is_schedulable(subs(harmonic_set))

    def test_ll_test_weaker_than_hyperbolic(self):
        ts = TaskSet.from_pairs([(1, 4), (1, 5), (1, 7)])
        if liu_layland_test_holds(subs(ts)):
            assert hyperbolic_bound_holds(subs(ts))

    def test_headroom(self, harmonic_set):
        assert utilization_headroom(subs(harmonic_set)) == pytest.approx(-0.125)

    @given(taskset_strategy(max_tasks=6, max_util=0.35))
    @settings(max_examples=40)
    def test_sufficient_tests_never_beat_exact(self, ts):
        s = subs(ts)
        if liu_layland_test_holds(s):
            assert is_schedulable(s)
        if hyperbolic_bound_holds(s):
            assert is_schedulable(s)


class TestRTAProperties:
    @given(taskset_strategy(max_tasks=7, max_util=0.5))
    @settings(max_examples=50)
    def test_responses_at_least_cost(self, ts):
        result = response_times(subs(ts))
        for sub, resp in zip(sorted(subs(ts), key=lambda s: s.priority),
                             result.responses):
            if not np.isnan(resp):
                assert resp >= sub.cost - 1e-9

    @given(taskset_strategy(max_tasks=6, max_util=0.5))
    @settings(max_examples=50)
    def test_monotone_in_cost(self, ts):
        """Increasing any execution time never decreases any response."""
        s = subs(ts)
        before = response_times(s)
        if not before.schedulable:
            return
        grown = [
            Subtask(
                cost=sub.cost * 1.05 if i == 0 else sub.cost,
                period=sub.period,
                deadline=sub.deadline,
                parent=sub.parent,
                index=sub.index,
                kind=sub.kind,
            )
            for i, sub in enumerate(sorted(s, key=lambda x: x.priority))
        ]
        # growing the top-priority cost is safe iff it still fits its deadline
        after = response_times(grown)
        for b, a in zip(before.responses, after.responses):
            if not np.isnan(a):
                assert a >= b - 1e-9

    @given(integer_taskset_strategy(max_tasks=5, max_period=16))
    @settings(max_examples=40)
    def test_schedulable_iff_all_responses_finite(self, ts):
        s = subs(ts)
        result = response_times(s)
        assert result.schedulable == (not np.isnan(result.responses).any())
        assert result.schedulable == is_schedulable(s)
