"""Tests for extended RTA (jitter + blocking)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.rta import response_time
from repro.core.rta_ext import is_schedulable_with_blocking, response_time_ext
from repro.core.task import Subtask, TaskSet

from tests.conftest import integer_taskset_strategy


def subs(taskset):
    return [Subtask.whole(t) for t in taskset]


class TestReducesToPlainRTA:
    @given(integer_taskset_strategy(max_tasks=5, max_period=16))
    @settings(max_examples=40, deadline=None)
    def test_zero_extras_match_core(self, ts):
        s = sorted(subs(ts), key=lambda x: x.priority)
        costs = np.array([x.cost for x in s])
        periods = np.array([x.period for x in s])
        for i in range(len(s)):
            plain = response_time(costs[i], costs[:i], periods[:i],
                                  s[i].deadline)
            ext = response_time_ext(costs[i], costs[:i], periods[:i],
                                    s[i].deadline)
            if plain is None:
                assert ext is None
            else:
                assert ext == pytest.approx(plain)


class TestBlocking:
    def test_blocking_adds_to_response(self):
        r0 = response_time_ext(2.0, np.array([1.0]), np.array([4.0]), 20.0)
        r1 = response_time_ext(2.0, np.array([1.0]), np.array([4.0]), 20.0,
                               blocking=1.0)
        assert r1 == pytest.approx(r0 + 1.0)

    def test_blocking_can_cause_miss(self):
        assert response_time_ext(
            2.0, np.array([2.0]), np.array([4.0]), 4.0, blocking=0.5
        ) is None

    def test_blocking_can_trigger_extra_preemption(self):
        # (2,5) hp; C=2, B=2: w = 2+2+ceil(w/5)*2 -> w=6 -> ceil(6/5)=2
        # -> 2+2+4 = 8 -> fixed point 8.
        r = response_time_ext(2.0, np.array([2.0]), np.array([5.0]), 20.0,
                              blocking=2.0)
        assert r == pytest.approx(8.0)

    def test_negative_blocking_rejected(self):
        with pytest.raises(ValueError):
            response_time_ext(1.0, np.array([]), np.array([]), 5.0,
                              blocking=-1.0)


class TestJitter:
    def test_hp_jitter_increases_interference(self):
        # hp (2,5) with J=1: at w=3+..., jitter forces an extra job sooner.
        r0 = response_time_ext(2.0, np.array([2.0]), np.array([5.0]), 20.0)
        r1 = response_time_ext(2.0, np.array([2.0]), np.array([5.0]), 20.0,
                               hp_jitters=np.array([2.0]))
        assert r1 >= r0

    def test_own_jitter_added_to_response(self):
        r = response_time_ext(2.0, np.array([]), np.array([]), 10.0,
                              own_jitter=3.0)
        assert r == pytest.approx(5.0)

    def test_own_jitter_can_cause_miss(self):
        assert response_time_ext(2.0, np.array([]), np.array([]), 4.0,
                                 own_jitter=3.0) is None

    def test_negative_jitter_rejected(self):
        with pytest.raises(ValueError):
            response_time_ext(1.0, np.array([1.0]), np.array([4.0]), 5.0,
                              hp_jitters=np.array([-1.0]))


class TestScheduleWithBlocking:
    def test_zero_blocking_matches_core(self):
        ts = TaskSet.from_pairs([(2, 4), (2, 8), (4, 16)])
        s = subs(ts)
        assert is_schedulable_with_blocking(s, [0.0] * 3)

    def test_blocking_breaks_tight_set(self):
        # U=1 harmonic: the bottom task finishes exactly at its deadline,
        # so blocking it by any amount causes a miss.
        ts = TaskSet.from_pairs([(2, 4), (2, 8), (4, 16)])
        s = subs(ts)
        assert not is_schedulable_with_blocking(s, [0.0, 0.0, 0.5])

    def test_lowest_priority_blocking_is_free_here(self):
        # blocking only on the lowest-priority task of a set with slack
        ts = TaskSet.from_pairs([(1, 4), (1, 8), (2, 16)])
        s = subs(ts)
        assert is_schedulable_with_blocking(s, [0.0, 0.0, 3.0])

    def test_length_mismatch_rejected(self):
        ts = TaskSet.from_pairs([(1, 4)])
        with pytest.raises(ValueError):
            is_schedulable_with_blocking(subs(ts), [0.0, 0.0])
