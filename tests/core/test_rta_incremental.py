"""Property tests: the incremental RTA context vs the one-shot analysis.

The cached-context admission path (`RTAContext.admits`, `with_subtask`,
lazy deferred resolution) must be *decision- and value-identical* to the
straightforward rebuild-per-probe path (`is_schedulable`,
`response_times`).  These tests drive both on randomized processors —
random seeds come from hypothesis, the processor contents from a NumPy
generator derived from them, so failures replay exactly.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rta import RTAContext, is_schedulable, response_times
from repro.core.rmts import partition_rmts
from repro.core.rmts_light import partition_rmts_light
from repro.core.baselines import partition_no_split
from repro.core.task import Subtask, Task
from repro.perf import use_incremental_rta
from repro.taskgen.generators import TaskSetGenerator

seeds = st.integers(min_value=0, max_value=10_000)


def random_subtasks(seed: int, n=None, constrained=True):
    """Priority-sorted random subtasks, some with synthetic deadlines."""
    rng = np.random.default_rng(seed)
    if n is None:
        n = int(rng.integers(1, 7))
    subs = []
    for tid in range(n):
        period = float(rng.uniform(4.0, 64.0))
        cost = float(rng.uniform(0.05, 0.45) * period)
        deadline = period
        if constrained and rng.random() < 0.4:
            deadline = float(min(period, max(cost, 0.6 * period)))
        # Even tids: leaves the odd slots free for a candidate, so priority
        # collisions (impossible on a real processor) cannot occur.
        task = Task(cost=cost, period=period, tid=2 * tid)
        subs.append(
            Subtask(cost=cost, period=period, deadline=deadline, parent=task)
        )
    return subs


def random_candidate(seed: int, n_existing: int) -> Subtask:
    rng = np.random.default_rng(seed + 777)
    period = float(rng.uniform(4.0, 64.0))
    cost = float(rng.uniform(0.05, 0.6) * period)
    # Any priority slot: above, between, or below the existing (even) tids.
    tid = 2 * int(rng.integers(0, n_existing + 1)) - 1
    task = Task(cost=cost, period=period, tid=tid)
    deadline = period if rng.random() < 0.6 else float(max(cost, 0.7 * period))
    return Subtask(cost=cost, period=period, deadline=deadline, parent=task)


def merged(subtasks, candidate):
    return sorted(subtasks + [candidate], key=lambda s: s.priority)


class TestContextMatchesOneShot:
    @given(seed=seeds)
    @settings(max_examples=150, deadline=None)
    def test_schedulable_flag(self, seed):
        subs = random_subtasks(seed)
        assert RTAContext(subs).schedulable == is_schedulable(subs)

    @given(seed=seeds)
    @settings(max_examples=150, deadline=None)
    def test_responses_match_where_computed(self, seed):
        """Every cached response equals the one-shot value bit-for-bit.

        The context may leave responses NaN past the first failure (or
        where analysis was deferred and never needed); wherever it *does*
        hold a number, it must be the exact same float.
        """
        subs = random_subtasks(seed)
        ctx = RTAContext(subs)
        ctx.schedulable  # force deferred resolution
        reference = response_times(subs).responses
        for got, want in zip(ctx.responses, reference):
            if got == got:  # not NaN
                assert got == want

    @given(seed=seeds)
    @settings(max_examples=200, deadline=None)
    def test_admits_equals_rebuild(self, seed):
        subs = random_subtasks(seed)
        candidate = random_candidate(seed, len(subs))
        ctx = RTAContext(subs)
        expected = is_schedulable(merged(subs, candidate))
        assert ctx.admits_subtask(candidate) == expected

    @given(seed=seeds)
    @settings(max_examples=150, deadline=None)
    def test_with_subtask_equals_fresh_build(self, seed):
        subs = random_subtasks(seed)
        candidate = random_candidate(seed, len(subs))
        grown = RTAContext(subs).with_subtask(candidate)
        fresh = RTAContext(merged(subs, candidate))
        assert grown.schedulable == fresh.schedulable
        # After resolution both contexts expose the same computed values.
        for got, want in zip(grown.responses, fresh.responses):
            if got == got and want == want:
                assert got == want
        assert grown.util_sum == pytest.approx(fresh.util_sum, abs=1e-12)

    @given(seed=seeds)
    @settings(max_examples=100, deadline=None)
    def test_admits_then_with_subtask_stays_consistent(self, seed):
        """The probe memo fast path must not corrupt the grown context."""
        subs = random_subtasks(seed)
        candidate = random_candidate(seed, len(subs))
        ctx = RTAContext(subs)
        if not ctx.admits_subtask(candidate):
            return
        grown = ctx.with_subtask(candidate)
        assert grown.schedulable
        fresh = RTAContext(merged(subs, candidate))
        assert fresh.schedulable
        for got, want in zip(grown.responses, fresh.responses):
            if got == got and want == want:
                assert got == want


class TestEndToEndPartitionEquality:
    """Partitioning with the incremental engine on/off is indistinguishable."""

    algorithms = [
        ("rmts", lambda ts, m: partition_rmts(ts, m)),
        ("rmts_star", lambda ts, m: partition_rmts(ts, m, dedicate_over_bound=False)),
        ("rmts_light", lambda ts, m: partition_rmts_light(ts, m)),
        ("p_rm_ffd", lambda ts, m: partition_no_split(ts, m)),
    ]

    @pytest.mark.parametrize("name,algo", algorithms, ids=[a[0] for a in algorithms])
    def test_partitions_identical(self, name, algo):
        gen = TaskSetGenerator(n=12, period_model="loguniform")
        for seed in range(8):
            for u_norm in (0.7, 0.85, 0.97):
                ts = gen.generate(u_norm=u_norm, processors=4, seed=seed)
                with use_incremental_rta(False):
                    legacy = algo(ts, 4)
                with use_incremental_rta(True):
                    incremental = algo(ts, 4)
                assert legacy.success == incremental.success
                assert legacy.unassigned_tids == incremental.unassigned_tids
                for p_legacy, p_inc in zip(
                    legacy.processors, incremental.processors
                ):
                    assert [
                        (s.cost, s.period, s.deadline, s.priority)
                        for s in p_legacy.subtasks
                    ] == [
                        (s.cost, s.period, s.deadline, s.priority)
                        for s in p_inc.subtasks
                    ]
