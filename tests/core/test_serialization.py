"""Tests for partition JSON serialization."""

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.baselines.edf_split import partition_edf_split
from repro.core.rmts import partition_rmts
from repro.core.serialization import (
    load_partition,
    partition_from_dict,
    partition_to_dict,
    save_partition,
)
from repro.core.task import TaskSet
from repro.sim.engine import simulate_partition
from repro.taskgen.generators import TaskSetGenerator


class TestRoundtrip:
    def test_simple_partition(self, harmonic_set):
        part = partition_rmts(harmonic_set, 2)
        again = partition_from_dict(partition_to_dict(part))
        assert again.algorithm == part.algorithm
        assert again.success == part.success
        assert again.validate() == []
        assert again.total_assigned_utilization == pytest.approx(
            part.total_assigned_utilization
        )

    def test_split_structure_preserved(self, tight_harmonic_set):
        part = partition_rmts(tight_harmonic_set, 2)
        again = partition_from_dict(partition_to_dict(part))
        assert again.split_tids() == part.split_tids()
        for tid in part.split_tids():
            assert again.processors_hosting(tid) == part.processors_hosting(tid)

    def test_roles_and_flags_preserved(self, tight_harmonic_set):
        part = partition_rmts(tight_harmonic_set, 2)
        again = partition_from_dict(partition_to_dict(part))
        for a, b in zip(part.processors, again.processors):
            assert a.role == b.role
            assert a.full == b.full
            assert a.pre_assigned_tid == b.pre_assigned_tid

    def test_edf_scheduler_preserved(self):
        ts = TaskSet.from_pairs([(5.2, 10)] * 3)
        part = partition_edf_split(ts, 2)
        again = partition_from_dict(partition_to_dict(part))
        assert again.scheduler == "edf"
        assert again.validate() == []

    def test_simulation_identical_after_roundtrip(self, tight_harmonic_set):
        part = partition_rmts(tight_harmonic_set, 2)
        again = partition_from_dict(partition_to_dict(part))
        a = simulate_partition(part, horizon=96.0)
        b = simulate_partition(again, horizon=96.0)
        assert a.max_response == b.max_response
        assert a.jobs_completed == b.jobs_completed

    @given(st.integers(0, 3_000))
    @settings(max_examples=15, deadline=None)
    def test_random_partitions_roundtrip(self, seed):
        rng = np.random.default_rng(seed)
        gen = TaskSetGenerator(n=8, period_model="loguniform")
        ts = gen.generate(u_norm=float(rng.uniform(0.5, 0.9)),
                          processors=2, seed=rng)
        part = partition_rmts(ts, 2)
        again = partition_from_dict(partition_to_dict(part))
        assert again.success == part.success
        assert len(again.processors) == len(part.processors)
        for a, b in zip(part.processors, again.processors):
            assert a.utilization == pytest.approx(b.utilization)


class TestFileIO:
    def test_save_and_load(self, harmonic_set, tmp_path):
        part = partition_rmts(harmonic_set, 2)
        path = tmp_path / "part.json"
        save_partition(part, str(path))
        again = load_partition(str(path))
        assert again.algorithm == part.algorithm
        # the file is valid, readable JSON with the format tag
        data = json.loads(path.read_text())
        assert data["format"] == "repro-partition-v1"

    def test_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text(json.dumps({"hello": 1}))
        with pytest.raises(ValueError):
            load_partition(str(path))

    def test_info_made_jsonable(self, tight_harmonic_set, tmp_path):
        part = partition_rmts(tight_harmonic_set, 2)
        part.info["weird"] = {1: object()}
        path = tmp_path / "part.json"
        save_partition(part, str(path))  # must not raise
        assert load_partition(str(path)).success


class TestRoundtripHardening:
    """PR-2 hardening: failure artifacts, pre-assignment and splits survive."""

    def test_unassigned_tids_preserved_on_failure(self, tight_harmonic_set):
        part = partition_rmts(tight_harmonic_set, 1)  # cannot fit on 1 proc
        assert not part.success and part.unassigned_tids
        again = partition_from_dict(partition_to_dict(part))
        assert again.success is False
        assert again.unassigned_tids == part.unassigned_tids

    def test_pre_assigned_heavy_task_preserved(self):
        # One heavy task with little lower-priority load -> pre-assigned
        # processor (see tests/core/test_rmts.py); the role, tid and the
        # pre-assign info record must all survive a round trip.
        ts = TaskSet.from_pairs([(6, 10), (1, 20), (1, 40)])
        part = partition_rmts(ts, 2)
        assert part.info["pre_assigned_tids"] == [0]
        again = partition_from_dict(partition_to_dict(part))
        assert again.info["pre_assigned_tids"] == [0]
        pre_before = [
            (p.index, p.role.value, p.pre_assigned_tid)
            for p in part.processors if p.pre_assigned_tid is not None
        ]
        pre_after = [
            (p.index, p.role.value, p.pre_assigned_tid)
            for p in again.processors if p.pre_assigned_tid is not None
        ]
        assert pre_before and pre_after == pre_before

    def test_split_subtask_ordering_preserved(self, tight_harmonic_set):
        part = partition_rmts(tight_harmonic_set, 2)
        assert part.split_tids(), "fixture must force a split"
        again = partition_from_dict(partition_to_dict(part))
        for tid in part.split_tids():
            before = part.split_views()[tid].sorted_pieces()
            after = again.split_views()[tid].sorted_pieces()
            assert [p.index for p in after] == [p.index for p in before]
            assert [p.kind for p in after] == [p.kind for p in before]
            assert [p.cost for p in after] == pytest.approx(
                [p.cost for p in before]
            )
            assert [p.deadline for p in after] == pytest.approx(
                [p.deadline for p in before]
            )
        # migration path (host processor order) identical
        for tid in part.split_tids():
            assert again.processors_hosting(tid) == part.processors_hosting(tid)


class TestSchedulerValidation:
    def test_unknown_scheduler_rejected(self, harmonic_set, tmp_path):
        part = partition_rmts(harmonic_set, 2)
        data = partition_to_dict(part)
        data["scheduler"] = "wfq"
        with pytest.raises(ValueError, match="unknown scheduler 'wfq'"):
            partition_from_dict(data)
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(data))
        with pytest.raises(ValueError, match="unknown scheduler"):
            load_partition(str(path))

    def test_known_schedulers_accepted(self, harmonic_set):
        part = partition_rmts(harmonic_set, 2)
        data = partition_to_dict(part)
        for scheduler in ("fixed", "edf"):
            data["scheduler"] = scheduler
            assert partition_from_dict(data).scheduler == scheduler

    def test_top_level_edf_tag_authoritative(self):
        ts = TaskSet.from_pairs([(5.2, 10)] * 3)
        part = partition_edf_split(ts, 2)
        data = partition_to_dict(part)
        del data["info"]["scheduler"]  # hand-written payloads may omit it
        assert partition_from_dict(data).scheduler == "edf"


class TestSchemaVersion:
    """PR-4 satellite: payloads carry a schema version and mismatches fail."""

    def test_version_embedded_in_dict(self, harmonic_set):
        from repro.core.serialization import SCHEMA_VERSION

        data = partition_to_dict(partition_rmts(harmonic_set, 2))
        assert data["schema_version"] == SCHEMA_VERSION

    def test_version_written_to_file(self, harmonic_set, tmp_path):
        from repro.core.serialization import SCHEMA_VERSION

        path = tmp_path / "part.json"
        save_partition(partition_rmts(harmonic_set, 2), str(path))
        assert json.loads(path.read_text())["schema_version"] == SCHEMA_VERSION

    def test_mismatched_version_rejected(self, harmonic_set):
        data = partition_to_dict(partition_rmts(harmonic_set, 2))
        data["schema_version"] = 999
        with pytest.raises(ValueError, match="schema version"):
            partition_from_dict(data)

    def test_mismatched_version_rejected_from_file(
        self, harmonic_set, tmp_path
    ):
        data = partition_to_dict(partition_rmts(harmonic_set, 2))
        data["schema_version"] = 999
        path = tmp_path / "future.json"
        path.write_text(json.dumps(data))
        with pytest.raises(ValueError, match="schema version"):
            load_partition(str(path))

    def test_legacy_payload_without_version_accepted(self, harmonic_set):
        # Payloads written before the field existed are version-1 by
        # definition and must keep loading.
        data = partition_to_dict(partition_rmts(harmonic_set, 2))
        del data["schema_version"]
        assert partition_from_dict(data).validate() == []
