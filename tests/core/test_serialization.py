"""Tests for partition JSON serialization."""

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.baselines.edf_split import partition_edf_split
from repro.core.rmts import partition_rmts
from repro.core.serialization import (
    load_partition,
    partition_from_dict,
    partition_to_dict,
    save_partition,
)
from repro.core.task import TaskSet
from repro.sim.engine import simulate_partition
from repro.taskgen.generators import TaskSetGenerator


class TestRoundtrip:
    def test_simple_partition(self, harmonic_set):
        part = partition_rmts(harmonic_set, 2)
        again = partition_from_dict(partition_to_dict(part))
        assert again.algorithm == part.algorithm
        assert again.success == part.success
        assert again.validate() == []
        assert again.total_assigned_utilization == pytest.approx(
            part.total_assigned_utilization
        )

    def test_split_structure_preserved(self, tight_harmonic_set):
        part = partition_rmts(tight_harmonic_set, 2)
        again = partition_from_dict(partition_to_dict(part))
        assert again.split_tids() == part.split_tids()
        for tid in part.split_tids():
            assert again.processors_hosting(tid) == part.processors_hosting(tid)

    def test_roles_and_flags_preserved(self, tight_harmonic_set):
        part = partition_rmts(tight_harmonic_set, 2)
        again = partition_from_dict(partition_to_dict(part))
        for a, b in zip(part.processors, again.processors):
            assert a.role == b.role
            assert a.full == b.full
            assert a.pre_assigned_tid == b.pre_assigned_tid

    def test_edf_scheduler_preserved(self):
        ts = TaskSet.from_pairs([(5.2, 10)] * 3)
        part = partition_edf_split(ts, 2)
        again = partition_from_dict(partition_to_dict(part))
        assert again.scheduler == "edf"
        assert again.validate() == []

    def test_simulation_identical_after_roundtrip(self, tight_harmonic_set):
        part = partition_rmts(tight_harmonic_set, 2)
        again = partition_from_dict(partition_to_dict(part))
        a = simulate_partition(part, horizon=96.0)
        b = simulate_partition(again, horizon=96.0)
        assert a.max_response == b.max_response
        assert a.jobs_completed == b.jobs_completed

    @given(st.integers(0, 3_000))
    @settings(max_examples=15, deadline=None)
    def test_random_partitions_roundtrip(self, seed):
        rng = np.random.default_rng(seed)
        gen = TaskSetGenerator(n=8, period_model="loguniform")
        ts = gen.generate(u_norm=float(rng.uniform(0.5, 0.9)),
                          processors=2, seed=rng)
        part = partition_rmts(ts, 2)
        again = partition_from_dict(partition_to_dict(part))
        assert again.success == part.success
        assert len(again.processors) == len(part.processors)
        for a, b in zip(part.processors, again.processors):
            assert a.utilization == pytest.approx(b.utilization)


class TestFileIO:
    def test_save_and_load(self, harmonic_set, tmp_path):
        part = partition_rmts(harmonic_set, 2)
        path = tmp_path / "part.json"
        save_partition(part, str(path))
        again = load_partition(str(path))
        assert again.algorithm == part.algorithm
        # the file is valid, readable JSON with the format tag
        data = json.loads(path.read_text())
        assert data["format"] == "repro-partition-v1"

    def test_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text(json.dumps({"hello": 1}))
        with pytest.raises(ValueError):
            load_partition(str(path))

    def test_info_made_jsonable(self, tight_harmonic_set, tmp_path):
        part = partition_rmts(tight_harmonic_set, 2)
        part.info["weird"] = {1: object()}
        path = tmp_path / "part.json"
        save_partition(part, str(path))  # must not raise
        assert load_partition(str(path)).success
