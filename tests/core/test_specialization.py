"""Tests for the Han-Tyan Sr/DCT specialization bound and transform."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bounds import (
    SpecializationBound,
    harmonic_chain_count,
    harmonize_periods,
    ll_bound,
)
from repro.core.rta import is_schedulable
from repro.core.task import Subtask, Task, TaskSet
from repro.taskgen.generators import TaskSetGenerator

from tests.conftest import taskset_strategy


class TestSpecializationBound:
    def test_power_of_two_harmonic_is_one(self):
        ts = TaskSet.from_pairs([(1, 4), (1, 8), (1, 16)])
        assert SpecializationBound().value(ts) == pytest.approx(1.0)

    def test_any_harmonic_grid_is_one(self):
        ts = TaskSet.from_pairs([(1, 3), (1, 6), (1, 12)])
        assert SpecializationBound().value(ts) == pytest.approx(1.0)

    def test_single_task_is_one(self):
        ts = TaskSet.from_pairs([(1, 7)])
        assert SpecializationBound().value(ts) == pytest.approx(1.0)

    def test_value_in_half_one(self):
        gen = TaskSetGenerator(n=10, period_model="loguniform")
        for seed in range(10):
            ts = gen.generate(u_norm=0.5, processors=2, seed=seed)
            v = SpecializationBound().value(ts)
            assert 0.5 < v <= 1.0 + 1e-12

    def test_known_value(self):
        # periods 4, 7, 15 with base 4: grid 4, 4, 8 -> inflations
        # 1, 1.75, 1.875; base 7: grid 3.5,7,14 -> 8/7, 1, 15/14;
        # base 15: 3.75, 7.5... -> 4/3.75, 7/... base 7 wins: worst
        # inflation 8/7 -> bound 7/8 = 0.875.
        ts = TaskSet.from_pairs([(1, 4), (1, 7), (1, 15)])
        assert SpecializationBound().value(ts) == pytest.approx(0.875)

    def test_empty(self):
        assert SpecializationBound().value(TaskSet([])) == 1.0

    @given(taskset_strategy(min_tasks=2, max_tasks=8, max_util=0.4))
    @settings(max_examples=40, deadline=None)
    def test_soundness_against_exact_rta(self, ts):
        """Any set with U <= Sr bound must pass exact RTA — the whole
        point of a utilization bound."""
        lam = SpecializationBound().value(ts)
        total = ts.total_utilization
        if total <= 0:
            return
        factor = min(lam / total * 0.999, 1.0 / ts.max_utilization)
        if factor <= 0:
            return
        scaled = ts.scaled_costs(factor)
        if scaled.total_utilization <= lam:
            assert is_schedulable([Subtask.whole(t) for t in scaled])

    def test_often_beats_ll_on_near_harmonic_sets(self):
        ts = TaskSet.from_pairs([(1, 10), (1, 19), (1, 41), (1, 80)])
        assert SpecializationBound().value(ts) > ll_bound(4)


class TestHarmonizePeriods:
    def test_result_is_harmonic(self):
        ts = TaskSet.from_pairs([(1, 4), (1, 7), (1, 15)])
        h = harmonize_periods(ts)
        assert harmonic_chain_count([t.period for t in h]) == 1

    def test_periods_never_grow(self):
        gen = TaskSetGenerator(n=8, period_model="loguniform")
        for seed in range(6):
            ts = gen.generate(u_norm=0.4, processors=2, seed=seed)
            h = harmonize_periods(ts)
            orig = sorted(t.period for t in ts)
            new = sorted(t.period for t in h)
            for o, m in zip(orig, new):
                assert m <= o + 1e-9

    def test_costs_preserved(self):
        ts = TaskSet.from_pairs([(1, 4), (2, 7)])
        h = harmonize_periods(ts)
        assert sorted(t.cost for t in h) == [1, 2]

    def test_explicit_base(self):
        ts = TaskSet.from_pairs([(1, 4), (1, 7), (1, 15)])
        h = harmonize_periods(ts, base=4.0)
        assert {t.period for t in h} == {4.0, 8.0}

    def test_invalid_base_rejected(self):
        ts = TaskSet.from_pairs([(1, 4)])
        with pytest.raises(ValueError):
            harmonize_periods(ts, base=0.0)

    def test_infeasible_inflation_raises(self):
        # cost 6.9 with period 7 -> harmonized period 4 < cost
        ts = TaskSet.from_pairs([(6.9, 7), (1, 4)])
        with pytest.raises(ValueError):
            harmonize_periods(ts, base=4.0)

    def test_empty_passthrough(self):
        empty = TaskSet([])
        assert harmonize_periods(empty) is empty

    @given(st.integers(0, 5_000))
    @settings(max_examples=25, deadline=None)
    def test_harmonized_schedulability_implies_original(self, seed):
        """The period-transformation argument: if the harmonized set
        passes exact RTA, so does the original."""
        rng = np.random.default_rng(seed)
        gen = TaskSetGenerator(n=int(rng.integers(2, 7)),
                               period_model="loguniform")
        ts = gen.generate(u_norm=float(rng.uniform(0.3, 0.5)),
                          processors=1, seed=rng)
        try:
            h = harmonize_periods(ts)
        except ValueError:
            return
        if is_schedulable([Subtask.whole(t) for t in h]):
            assert is_schedulable([Subtask.whole(t) for t in ts])

    def test_harmonized_light_set_earns_the_100pct_pipeline(self):
        """The design recipe the Sr transform enables: a NON-harmonic set
        whose periods sit near a power-of-two grid harmonizes with tiny
        utilization inflation, stays light, and then rides Theorem 8's
        100% bound on multiprocessors."""
        from repro.core.bounds import light_task_threshold
        from repro.core.rmts_light import is_light_task_set, partition_rmts_light

        periods = [10.0, 10.2, 20.4, 20.5, 40.8, 41.0, 80.0, 81.6]
        ts = TaskSet(
            Task(cost=0.23 * p, period=p) for p in periods  # U_i = 0.23
        )
        assert not ts.is_harmonic()
        h = harmonize_periods(ts, base=10.0)
        assert h.is_harmonic()
        # inflation is at most 2.5%, so the set stays light and U_M < 1
        assert is_light_task_set(h)
        u_m = h.normalized_utilization(2)
        assert u_m < 1.0
        part = partition_rmts_light(h, 2)
        assert part.success, "Theorem 8 covers the harmonized set"
