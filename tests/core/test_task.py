"""Unit tests for the task model (Task, Subtask, TaskSet, SplitTaskView)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.task import (
    SplitTaskView,
    Subtask,
    SubtaskKind,
    Task,
    TaskSet,
)

from tests.conftest import taskset_strategy


class TestTask:
    def test_basic_properties(self):
        t = Task(cost=2.0, period=10.0)
        assert t.utilization == pytest.approx(0.2)
        assert t.deadline == 10.0

    def test_rejects_nonpositive_cost(self):
        with pytest.raises(ValueError):
            Task(cost=0.0, period=1.0)

    def test_rejects_nonpositive_period(self):
        with pytest.raises(ValueError):
            Task(cost=1.0, period=0.0)

    def test_rejects_utilization_above_one(self):
        with pytest.raises(ValueError):
            Task(cost=2.0, period=1.0)

    def test_full_utilization_allowed(self):
        t = Task(cost=5.0, period=5.0)
        assert t.utilization == pytest.approx(1.0)

    def test_is_light(self):
        t = Task(cost=4.0, period=10.0)
        assert t.is_light(0.41)
        assert not t.is_light(0.39)

    def test_scaled(self):
        t = Task(cost=2.0, period=10.0, tid=3, name="x")
        s = t.scaled(cost_scale=2.0)
        assert s.cost == 4.0
        assert s.period == 10.0
        assert s.tid == 3
        assert s.name == "x"

    def test_dict_roundtrip(self):
        t = Task(cost=1.5, period=7.0, tid=2, name="demo")
        assert Task.from_dict(t.to_dict()) == t


class TestSubtask:
    def test_whole_covers_task(self):
        t = Task(cost=3.0, period=9.0, tid=1)
        s = Subtask.whole(t)
        assert s.cost == 3.0
        assert s.deadline == 9.0
        assert s.kind is SubtaskKind.WHOLE
        assert s.priority == 1

    def test_rejects_deadline_beyond_period(self):
        t = Task(cost=1.0, period=5.0)
        with pytest.raises(ValueError):
            Subtask(cost=1.0, period=5.0, deadline=6.0, parent=t)

    def test_rejects_bad_index(self):
        t = Task(cost=1.0, period=5.0)
        with pytest.raises(ValueError):
            Subtask(cost=1.0, period=5.0, deadline=5.0, parent=t, index=0)

    def test_zero_cost_subtask_allowed_as_value(self):
        # PendingPiece may probe zero-cost candidates; the value object
        # itself permits cost 0 (assignment to a processor does not).
        t = Task(cost=1.0, period=5.0)
        s = Subtask(cost=0.0, period=5.0, deadline=5.0, parent=t)
        assert s.utilization == 0.0

    def test_label_shows_kind(self):
        t = Task(cost=2.0, period=5.0, tid=3, name="tau3")
        body = Subtask(
            cost=1.0, period=5.0, deadline=5.0, parent=t, index=1,
            kind=SubtaskKind.BODY,
        )
        assert "body" in body.label()


class TestTaskSetOrdering:
    def test_sorted_by_period(self):
        ts = TaskSet([Task(cost=1, period=20), Task(cost=1, period=5)])
        assert [t.period for t in ts] == [5, 20]

    def test_tids_are_priorities(self):
        ts = TaskSet([Task(cost=1, period=20), Task(cost=1, period=5)])
        assert [t.tid for t in ts] == [0, 1]

    def test_ties_broken_by_input_order(self):
        ts = TaskSet(
            [Task(cost=1, period=5, name="a"), Task(cost=2, period=5, name="b")]
        )
        assert ts[0].name == "a"
        assert ts[1].name == "b"

    def test_names_preserved_or_generated(self):
        ts = TaskSet([Task(cost=1, period=5, name="keep"), Task(cost=1, period=6)])
        assert ts[0].name == "keep"
        assert ts[1].name == "tau1"


class TestTaskSetAggregates:
    def test_total_utilization(self, harmonic_set):
        assert harmonic_set.total_utilization == pytest.approx(1.125)

    def test_normalized_utilization(self, harmonic_set):
        assert harmonic_set.normalized_utilization(3) == pytest.approx(0.375)

    def test_max_utilization(self, harmonic_set):
        assert harmonic_set.max_utilization == pytest.approx(0.375)

    def test_array_views_aligned(self, general_set):
        u = general_set.utilizations()
        c = general_set.costs()
        p = general_set.periods()
        assert u == pytest.approx(c / p)

    def test_is_light(self, harmonic_set):
        assert harmonic_set.is_light(0.4)
        assert not harmonic_set.is_light(0.2)


class TestTaskSetStructure:
    def test_harmonic_detection(self, harmonic_set, general_set):
        assert harmonic_set.is_harmonic()
        assert not general_set.is_harmonic()

    def test_single_task_is_harmonic(self):
        assert TaskSet([Task(cost=1, period=3)]).is_harmonic()

    def test_hyperperiod_integers(self, harmonic_set):
        assert harmonic_set.hyperperiod() == 32.0

    def test_hyperperiod_none_for_irrational(self):
        ts = TaskSet([Task(cost=1, period=3.14159), Task(cost=1, period=7.0)])
        assert ts.hyperperiod() is None

    def test_hyperperiod_lcm(self):
        ts = TaskSet.from_pairs([(1, 4), (1, 6)])
        assert ts.hyperperiod() == 12.0


class TestTaskSetTransforms:
    def test_scaled_costs(self, harmonic_set):
        scaled = harmonic_set.scaled_costs(0.5)
        assert scaled.total_utilization == pytest.approx(0.5625)
        assert [t.period for t in scaled] == [t.period for t in harmonic_set]

    def test_scaled_costs_rejects_infeasible(self, harmonic_set):
        with pytest.raises(ValueError):
            harmonic_set.scaled_costs(5.0)

    def test_without(self, harmonic_set):
        smaller = harmonic_set.without([0])
        assert len(smaller) == 3
        # tids are re-assigned after removal
        assert [t.tid for t in smaller] == [0, 1, 2]

    def test_subset(self, harmonic_set):
        sub = harmonic_set.subset([1, 3])
        assert len(sub) == 2

    def test_dict_roundtrip(self, general_set):
        again = TaskSet.from_dicts(general_set.to_dicts())
        assert again == general_set

    def test_equality_and_hash(self, harmonic_set):
        other = TaskSet.from_pairs([(1, 4), (2, 8), (6, 16), (8, 32)])
        assert other == harmonic_set
        assert hash(other) == hash(harmonic_set)


class TestSplitTaskView:
    def _task(self):
        return Task(cost=6.0, period=12.0, tid=0)

    def test_single_whole_piece_consistent(self):
        t = self._task()
        view = SplitTaskView(task=t, pieces=[Subtask.whole(t)])
        assert view.is_consistent()

    def test_valid_split_consistent(self):
        t = self._task()
        body = Subtask(cost=2.0, period=12.0, deadline=12.0, parent=t,
                       index=1, kind=SubtaskKind.BODY)
        tail = Subtask(cost=4.0, period=12.0, deadline=10.0, parent=t,
                       index=2, kind=SubtaskKind.TAIL)
        view = SplitTaskView(task=t, pieces=[tail, body])
        assert view.is_consistent()
        assert view.body_cost == pytest.approx(2.0)
        assert view.sorted_pieces()[0] is body

    def test_cost_mismatch_inconsistent(self):
        t = self._task()
        body = Subtask(cost=2.0, period=12.0, deadline=12.0, parent=t,
                       index=1, kind=SubtaskKind.BODY)
        tail = Subtask(cost=3.0, period=12.0, deadline=10.0, parent=t,
                       index=2, kind=SubtaskKind.TAIL)
        assert not SplitTaskView(task=t, pieces=[body, tail]).is_consistent()

    def test_wrong_tail_deadline_inconsistent(self):
        t = self._task()
        body = Subtask(cost=2.0, period=12.0, deadline=12.0, parent=t,
                       index=1, kind=SubtaskKind.BODY)
        tail = Subtask(cost=4.0, period=12.0, deadline=12.0, parent=t,
                       index=2, kind=SubtaskKind.TAIL)
        assert not SplitTaskView(task=t, pieces=[body, tail]).is_consistent()

    def test_gap_in_indices_inconsistent(self):
        t = self._task()
        body = Subtask(cost=2.0, period=12.0, deadline=12.0, parent=t,
                       index=1, kind=SubtaskKind.BODY)
        tail = Subtask(cost=4.0, period=12.0, deadline=10.0, parent=t,
                       index=3, kind=SubtaskKind.TAIL)
        assert not SplitTaskView(task=t, pieces=[body, tail]).is_consistent()

    def test_empty_view_inconsistent(self):
        assert not SplitTaskView(task=self._task()).is_consistent()


class TestTaskSetProperties:
    @given(taskset_strategy(max_tasks=8))
    def test_priority_order_invariant(self, ts):
        periods = [t.period for t in ts]
        assert periods == sorted(periods)
        assert [t.tid for t in ts] == list(range(len(ts)))

    @given(taskset_strategy(max_tasks=8))
    def test_total_utilization_is_sum(self, ts):
        assert ts.total_utilization == pytest.approx(
            sum(t.utilization for t in ts)
        )

    @given(taskset_strategy(max_tasks=6), st.floats(min_value=0.1, max_value=1.0))
    def test_scaling_scales_utilization(self, ts, factor):
        scaled = ts.scaled_costs(factor)
        assert scaled.total_utilization == pytest.approx(
            ts.total_utilization * factor
        )
