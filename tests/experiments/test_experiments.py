"""Integration tests: every registered experiment runs in quick mode and
its paper-claim checks pass.

These are the repository's end-to-end reproduction guarantees: if one of
these fails, a quantitative statement from the paper stopped holding in
this implementation.
"""

import pytest

from repro.experiments import all_experiments, get_experiment
from repro.experiments.base import ExperimentReport, register


class TestRegistry:
    def test_expected_ids_present(self):
        ids = {e.experiment_id for e in all_experiments()}
        assert {"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9",
                "e10", "a1"} <= ids

    def test_lookup_by_id(self):
        assert get_experiment("e1").experiment_id == "e1"

    def test_unknown_id(self):
        with pytest.raises(KeyError):
            get_experiment("e99")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register("e1", "dup")(lambda quick=True, seed=0: None)


class TestReportRendering:
    def test_render_contains_sections(self):
        report = ExperimentReport(
            experiment_id="x", title="T", paper_claim="C"
        )
        report.observations.append("obs")
        report.checks["ok"] = True
        text = report.render()
        assert "T" in text and "C" in text and "obs" in text and "PASS" in text

    def test_all_checks_pass_flag(self):
        report = ExperimentReport(experiment_id="x", title="T", paper_claim="C")
        report.checks["a"] = True
        assert report.all_checks_pass
        report.checks["b"] = False
        assert not report.all_checks_pass


@pytest.mark.parametrize(
    "experiment_id",
    [e.experiment_id for e in all_experiments()],
)
def test_experiment_runs_and_claims_hold(experiment_id):
    """Run each experiment quick-mode; every paper-claim check must pass."""
    exp = get_experiment(experiment_id)
    report = exp.run(quick=True, seed=0)
    assert report.tables, f"{experiment_id} produced no tables"
    failing = [name for name, ok in report.checks.items() if not ok]
    assert not failing, f"{experiment_id} failing checks: {failing}"


def test_cli_list(capsys):
    from repro.experiments.__main__ import main

    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "e1" in out and "a1" in out


def test_cli_runs_experiment(capsys):
    from repro.experiments.__main__ import main

    assert main(["e6"]) == 0
    out = capsys.readouterr().out
    assert "PASS" in out


def test_cli_no_args_shows_help(capsys):
    from repro.experiments.__main__ import main

    assert main([]) == 2
