"""Deeper tests of experiment outputs: table structure, determinism,
quick/full plumbing and the benchmark result files."""

import pytest

from repro.experiments import all_experiments, get_experiment


class TestDeterminism:
    @pytest.mark.parametrize("experiment_id", ["e6", "e8", "e10"])
    def test_same_seed_same_tables(self, experiment_id):
        exp = get_experiment(experiment_id)
        a = exp.run(quick=True, seed=3)
        b = exp.run(quick=True, seed=3)
        for ta, tb in zip(a.tables, b.tables):
            assert ta.header == tb.header
            for ra, rb in zip(ta.rows, tb.rows):
                for ca, cb in zip(ra, rb):
                    if isinstance(ca, float):
                        # timing columns (E10) may differ; values that are
                        # measurements of the workload must not
                        continue
                    assert ca == cb

    def test_different_seed_changes_sampled_results(self):
        exp = get_experiment("e9")
        a = exp.run(quick=True, seed=0)
        b = exp.run(quick=True, seed=99)
        # mean heavy counts are seed-dependent samples
        col_a = a.tables[0].column("mean heavy")
        col_b = b.tables[0].column("mean heavy")
        assert col_a != col_b


class TestTableStructure:
    def test_every_experiment_emits_nonempty_tables(self):
        for exp in all_experiments():
            report = exp.run(quick=True, seed=0)
            assert report.tables
            for table in report.tables:
                assert len(table) > 0, f"{exp.experiment_id}: empty table"

    def test_every_experiment_has_checks_and_claim(self):
        for exp in all_experiments():
            report = exp.run(quick=True, seed=0)
            assert report.paper_claim
            assert report.checks, f"{exp.experiment_id} has no checks"

    def test_reports_render_and_csv(self):
        report = get_experiment("e6").run(quick=True, seed=0)
        text = report.render()
        assert report.experiment_id in text
        for table in report.tables:
            csv = table.to_csv()
            assert csv.count("\n") == len(table) + 1  # header + rows
