"""Tests for the experiment CLI's report persistence (--write-dir)."""

import csv

import pytest

from repro.experiments.__main__ import main


class TestWriteDir:
    def test_reports_and_csvs_written(self, tmp_path, capsys):
        out = tmp_path / "results"
        assert main(["e6", "--write-dir", str(out)]) == 0
        text = (out / "e6.txt").read_text()
        assert "e6" in text and "PASS" in text
        csvs = sorted(out.glob("e6_table*.csv"))
        assert len(csvs) >= 2
        with open(csvs[0]) as fh:
            rows = list(csv.reader(fh))
        assert len(rows) > 1  # header + data

    def test_directory_created_if_missing(self, tmp_path, capsys):
        out = tmp_path / "a" / "b" / "c"
        assert main(["e8", "--write-dir", str(out)]) == 0
        assert (out / "e8.txt").exists()

    def test_multiple_experiments_coexist(self, tmp_path, capsys):
        out = tmp_path / "results"
        assert main(["e8", "e6", "--write-dir", str(out)]) == 0
        assert (out / "e8.txt").exists()
        assert (out / "e6.txt").exists()


class TestProvenanceSidecar:
    def test_sidecar_written_and_verifies(self, tmp_path, capsys):
        from repro.store.provenance import verify_artifact

        out = tmp_path / "results"
        assert main(["e6", "--write-dir", str(out)]) == 0
        sidecar = out / "e6_provenance.json"
        assert sidecar.exists()
        assert verify_artifact(str(sidecar)) == ("ok", [])

    def test_sidecar_flags_edited_output(self, tmp_path, capsys):
        from repro.store.provenance import verify_artifact

        out = tmp_path / "results"
        assert main(["e6", "--write-dir", str(out)]) == 0
        report_file = out / "e6.txt"
        report_file.write_text(report_file.read_text() + "edited later\n")
        status, problems = verify_artifact(str(out / "e6_provenance.json"))
        assert status == "mismatch"
        assert any("e6.txt" in p for p in problems)

    def test_sidecar_records_run_config(self, tmp_path, capsys):
        import json

        out = tmp_path / "results"
        assert main(["e6", "--write-dir", str(out), "--seed", "5"]) == 0
        payload = json.loads((out / "e6_provenance.json").read_text())
        assert payload["config"]["seed"] == 5
        assert payload["config"]["quick"] is True
        assert payload["provenance"]["seed"] == 5
        assert payload["checks_pass"] is True
