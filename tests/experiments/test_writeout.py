"""Tests for the experiment CLI's report persistence (--write-dir)."""

import csv

import pytest

from repro.experiments.__main__ import main


class TestWriteDir:
    def test_reports_and_csvs_written(self, tmp_path, capsys):
        out = tmp_path / "results"
        assert main(["e6", "--write-dir", str(out)]) == 0
        text = (out / "e6.txt").read_text()
        assert "e6" in text and "PASS" in text
        csvs = sorted(out.glob("e6_table*.csv"))
        assert len(csvs) >= 2
        with open(csvs[0]) as fh:
            rows = list(csv.reader(fh))
        assert len(rows) > 1  # header + data

    def test_directory_created_if_missing(self, tmp_path, capsys):
        out = tmp_path / "a" / "b" / "c"
        assert main(["e8", "--write-dir", str(out)]) == 0
        assert (out / "e8.txt").exists()

    def test_multiple_experiments_coexist(self, tmp_path, capsys):
        out = tmp_path / "results"
        assert main(["e8", "e6", "--write-dir", str(out)]) == 0
        assert (out / "e8.txt").exists()
        assert (out / "e6.txt").exists()
