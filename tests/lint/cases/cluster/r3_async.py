"""R3 fixture: blocking calls inside ``async def`` (cluster-scoped rule).

The cluster coordinator's async handlers run on the admission service's
event loop, so the R3 scope covers ``repro/cluster/`` too.
"""

import time


async def admit_handler(coordinator, path):
    time.sleep(0.05)  # expect: R3
    trace = open(path).read()  # expect: R3
    time.sleep(0.05)  # repro-lint: disable=R3 -- fixture

    def locked_admit():
        # Nested sync defs go to an executor: blocking there is fine.
        time.sleep(0.05)
        return coordinator

    return trace, locked_admit


def drain_queue(coordinator, path):
    # Blocking is fine in the synchronous coordinator itself.
    time.sleep(0.05)
    return open(path)
