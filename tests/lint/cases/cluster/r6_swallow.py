"""R6 fixture: swallowed exceptions (cluster-scoped rule)."""


def replay_journal(apply_op, records, log):
    for record in records:
        try:
            apply_op(record)
        except Exception:  # expect: R6
            pass
    try:
        apply_op(records[-1])
    except:  # expect: R6  # noqa: E722
        pass
    try:
        apply_op(records[0])
    except Exception:  # repro-lint: disable=R6 -- fixture
        pass
    try:
        apply_op(records[0])
    except Exception as exc:
        log.warning("replay failed: %s", exc)
    try:
        apply_op(records[0])
    except KeyError:
        # Narrow handlers are fine even when silent.
        pass
