"""R10 fixture package: entropy flowing into durable artifacts."""
