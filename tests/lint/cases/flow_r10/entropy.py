"""Entropy sources for the R10 fixture, one hop away from the writers."""

import os


def jitter():
    return os.urandom(8).hex()  # the entropy source


def stamped():
    return {"nonce": jitter()}


def fixed():
    return {"nonce": "0" * 16}
