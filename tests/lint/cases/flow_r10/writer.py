"""Artifact writers: two tainted sinks, one clean, one suppressed."""

from flow_r10.entropy import fixed, stamped


def write_bench_json(path, payload):
    raise NotImplementedError  # stand-in leaf; sink detection is by name


def write_report(path):
    payload = stamped()
    write_bench_json(path, payload)  # expect: R10


def journal_nonce(store):
    store.put("nonce", stamped())  # expect: R10


def write_fixed_report(path):
    write_bench_json(path, fixed())


def write_suppressed(path):
    write_bench_json(path, stamped())  # repro-lint: disable=R10
