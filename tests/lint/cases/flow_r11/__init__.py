"""R11 fixture package: fork-pool workers mutating module globals."""
