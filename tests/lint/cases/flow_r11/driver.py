"""Fork-pool drivers establishing the worker roots."""

from flow_r11.worker import quiet_item, safe_item, work_item


def run_all(pool, items):
    return pool.chunked_map(work_item, items)


def run_quiet(pool, items):
    return pool.chunked_map(quiet_item, items)


def run_safe(pool, items):
    return pool.chunked_map(safe_item, items)
