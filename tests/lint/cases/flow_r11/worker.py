"""Worker functions: unsanctioned global mutations vs the delta protocol."""

RESULTS = {}
_SEEN = []
COUNTERS = {}


def work_item(item):
    RESULTS[item] = item * 2  # expect: R11
    _tally(item)
    count_item(item)
    return item


def _tally(item):
    _SEEN.append(item)  # expect: R11


def count_item(item):
    COUNTERS["items"] = COUNTERS.get("items", 0) + 1  # sanctioned root


def quiet_item(item):
    RESULTS[item] = 0  # repro-lint: disable=R11
    return item


def safe_item(item):
    local = {}
    local[item] = item * 2
    return local
