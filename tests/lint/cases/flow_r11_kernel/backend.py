"""Kernel-backend-style per-process handle cache.

Mirrors the shape of ``repro.core.kernel.native``: a module-global
handle populated lazily on first use.  Inside a fork-pool worker that
mutation never reaches the parent — harmless for an idempotent load
cache, which is why the real module is sanctioned by name in
``_R11_SANCTIONED_MODULES``, but R11 must flag the pattern anywhere
else.
"""

_HANDLES = {}


def ensure_loaded():
    if "lib" not in _HANDLES:
        _HANDLES["lib"] = object()  # expect: R11
    return _HANDLES["lib"]


def run_bucket(item):
    lib = ensure_loaded()
    return (lib is not None, item)


def run_bucket_quiet(item):
    _HANDLES["alt"] = object()  # repro-lint: disable=R11 (per-process handle by design)
    return item
