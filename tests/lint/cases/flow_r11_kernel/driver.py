"""Fork-pool drivers dispatching kernel-style bucket workers."""

from flow_r11_kernel.backend import run_bucket, run_bucket_quiet


def evaluate(pool, items):
    return pool.chunked_map(run_bucket, items)


def evaluate_quiet(pool, items):
    return pool.chunked_map(run_bucket_quiet, items)
