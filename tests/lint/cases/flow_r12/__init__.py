"""R12 fixture package: handlers transitively swallowing invariants."""
