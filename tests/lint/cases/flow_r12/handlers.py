"""The catching side of the R12 fixture: swallowers vs observers."""

from flow_r12.invariants import deep_check, harmless


def lenient(value):
    try:
        return deep_check(value)
    except Exception:  # expect: R12
        return None


def swallows_assert(value):
    try:
        return deep_check(value)
    except AssertionError:  # expect: R12
        return None


def observant(value):
    try:
        return deep_check(value)
    except Exception as exc:
        return {"error": str(exc)}


def reraises_assert(value):
    try:
        return deep_check(value)
    except AssertionError:
        raise


def harmless_broad(value):
    try:
        return harmless(value)
    except Exception:
        return None


def suppressed(value):
    try:
        return deep_check(value)
    except Exception:  # repro-lint: disable=R12
        return None
