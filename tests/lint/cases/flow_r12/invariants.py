"""The raising side of the R12 fixture."""


class InvariantViolation(AssertionError):
    pass


def check_state(value):
    if value < 0:
        raise InvariantViolation("negative utilization")
    return value


def deep_check(value):
    return check_state(value)


def harmless(value):
    return value + 1
