"""R13 fixture package: registration/dispatch drift."""
