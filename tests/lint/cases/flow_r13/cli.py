"""argv[0] early dispatch vs the argparse subcommand catalog."""

import argparse


def build(argv):
    parser = argparse.ArgumentParser()
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("run")
    sub.add_parser("check")
    if argv and argv[0] == "migrate":  # expect: R13
        return None
    if argv and argv[0] == "run":
        return parser
    return parser
