"""ALL-CAPS registry with one unknown dispatch key and one suppressed."""


def fit_first(x):
    return x


def fit_best(x):
    return x


PARTITIONERS = {
    "first": fit_first,
    "best": fit_best,
}

PARTITIONERS["worst"] = fit_best


def dispatch(name, x):
    if name == "decreasing":
        return PARTITIONERS["decreasing"](x)  # expect: R13
    return PARTITIONERS["first"](x)


def dispatch_known(x):
    return PARTITIONERS["worst"](x)


def dispatch_suppressed(x):
    return PARTITIONERS["legacy"](x)  # repro-lint: disable=R13
