"""HTTP route dispatch vs the known-paths fallback tuple.

``/metrics`` is dispatched but missing from the fallback (405 becomes
404); ``/old`` is listed in the fallback but never dispatched (dead
route).  Both directions must be reported.
"""


def handle(request):
    if (request.method, request.path) == ("GET", "/healthz"):
        return 200
    if (request.method, request.path) == ("GET", "/metrics"):  # expect: R13
        return 200
    if request.path in ("/healthz", "/old"):  # expect: R13
        return 405
    return 404
