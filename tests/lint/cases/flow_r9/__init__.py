"""R9 fixture package: transitive blocking reachable from async defs."""
