"""Sync helpers for the R9 fixture — the blocking leaf lives here."""

import time


def slow_helper():
    time.sleep(0.1)  # the blocking leaf (lexically fine: not async)
    return True


def indirect():
    return slow_helper()


def offloaded_ok():
    time.sleep(0.1)  # only ever reached through an executor hop
    return True
