"""Async roots live under ``service/`` so R9 treats them as handlers."""
