"""Async handlers: two bad chains, one executor hop, one suppressed."""

import asyncio

from flow_r9.helpers import indirect, offloaded_ok, slow_helper


async def handler_two_hops(request):
    value = indirect()  # expect: R9
    return value


async def handler_one_hop(request):
    return slow_helper()  # expect: R9


async def handler_offloaded(request):
    loop = asyncio.get_running_loop()
    return await loop.run_in_executor(None, offloaded_ok)


async def handler_suppressed(request):
    return indirect()  # repro-lint: disable=R9
