"""Fixture: a file whose path ends in ``obs/cli.py`` is R8-exempt.

The real ``repro/obs/cli.py`` prints its summaries; this mirror asserts
the exemption stays in :data:`repro.lint.rules._R8_EXEMPT_SUFFIXES`.
"""


def main(summary):
    print(summary)
    return 0
