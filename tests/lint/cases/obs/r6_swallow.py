"""R6 fixture: swallowed exceptions (obs-scoped rule)."""


def flush(buffer, log):
    try:
        buffer.flush()
    except Exception:  # expect: R6
        pass
    try:
        buffer.flush()
    except:  # expect: R6  # noqa: E722
        pass
    try:
        buffer.flush()
    except Exception:  # repro-lint: disable=R6 -- fixture
        pass
    try:
        buffer.flush()
    except Exception as exc:
        log.warning("flush failed: %s", exc)
    try:
        buffer.flush()
    except OSError:
        # Narrow handlers are fine even when silent.
        pass
