"""R8 fixture: ``print()`` in obs library code (not a CLI surface)."""


def report_span(record):
    print(record)  # expect: R8
    print(record)  # repro-lint: disable=R8 -- fixture
    return record
