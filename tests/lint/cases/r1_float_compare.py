"""R1 fixture: raw float comparisons on schedulability quantities.

Tagged lines must be reported; the suppressed and tolerance-aware lines
must not.
"""


def decide(util, bound, model):
    flagged_le = util <= bound  # expect: R1
    flagged_eq = util == bound  # expect: R1
    suppressed = util >= bound  # repro-lint: disable=R1 -- fixture
    tolerant = util <= bound + 1e-9
    string_cmp = model == "uunifast"
    strict_lt = util < bound
    return flagged_le, flagged_eq, suppressed, tolerant, string_cmp, strict_lt
