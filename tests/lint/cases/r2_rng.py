"""R2 fixture: unseeded, hidden-constant and ad-hoc-arithmetic randomness."""

import random

import numpy as np


def draw(seed, i):
    bad_global = np.random.uniform(0.0, 1.0)  # expect: R2
    bad_unseeded = np.random.default_rng()  # expect: R2
    bad_constant = np.random.default_rng(1234)  # expect: R2
    bad_arith = np.random.default_rng(seed + 7 * i)  # expect: R2
    bad_stdlib = random.choice([1, 2, 3])  # expect: R2
    ok_param = np.random.default_rng(seed)
    ok_suppressed = np.random.default_rng()  # repro-lint: disable=R2
    return (
        bad_global,
        bad_unseeded,
        bad_constant,
        bad_arith,
        bad_stdlib,
        ok_param,
        ok_suppressed,
    )
