"""R4 fixture: counter declarations with one dead entry."""

_FIELDS = ("requests_total", "krn_batches", "dead_counter")  # expect: R4


class PerfCounters:
    pass
