"""R4 fixture: one declared counter touched, one undeclared counter bumped."""


def tick(COUNTERS):
    COUNTERS.requests_total += 1
    COUNTERS.bogus += 1  # expect: R4
