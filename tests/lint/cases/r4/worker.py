"""R4 fixture: declared counters touched, undeclared counters bumped."""


def tick(COUNTERS):
    COUNTERS.requests_total += 1
    COUNTERS.bogus += 1  # expect: R4


def bill_kernel_batch(COUNTERS):
    # The kernel counter family follows the same contract: billed names
    # must exist in PerfCounters._FIELDS.
    COUNTERS.krn_batches += 1
    COUNTERS.krn_bogus += 1  # expect: R4
