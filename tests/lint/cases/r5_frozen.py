"""R5 fixture: in-place mutation of frozen dataclasses."""


class Thing:
    def __post_init__(self):
        # Allowed scope: frozen dataclasses initialise themselves this way.
        object.__setattr__(self, "cost", 1.0)

    def clamp(self):
        object.__setattr__(self, "cost", 0.0)  # expect: R5
        object.__setattr__(self, "cost", 0.0)  # repro-lint: disable=R5
