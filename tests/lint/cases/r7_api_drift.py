"""R7 fixture: ``__all__`` drift in both directions."""

__all__ = ["exported", "ghost"]  # expect: R7


def exported():
    return 1


def orphan():  # expect: R7
    return 2


def _private_is_fine():
    return 3
