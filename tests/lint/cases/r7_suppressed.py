"""R7 fixture: the same drift, silenced file-wide."""
# repro-lint: disable-file=R7

__all__ = ["ghost"]


def orphan():
    return 0
