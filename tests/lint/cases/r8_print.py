"""R8 fixture: ``print()`` in library code."""


def report(value):
    print(value)  # expect: R8
    print(value)  # repro-lint: disable=R8 -- fixture
    return value
