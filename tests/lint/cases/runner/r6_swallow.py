"""R6 fixture: swallowed exceptions (runner-scoped rule)."""


def risky(work, log):
    try:
        work()
    except Exception:  # expect: R6
        pass
    try:
        work()
    except:  # expect: R6  # noqa: E722
        pass
    try:
        work()
    except Exception:  # repro-lint: disable=R6 -- fixture
        pass
    try:
        work()
    except Exception as exc:
        log.warning("failed: %s", exc)
    try:
        work()
    except ValueError:
        # Narrow handlers are fine even when silent.
        pass
