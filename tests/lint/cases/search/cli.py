"""Fixture: a file whose path ends in ``search/cli.py`` is R8-exempt.

The real ``repro/search/cli.py`` prints frontier and witness summaries;
this mirror asserts the exemption stays in
:data:`repro.lint.rules._R8_EXEMPT_SUFFIXES`.
"""


def main(verdict):
    print(verdict)
    return 0
