"""R2 fixture: search-style probe workers must derive RNG from the key.

Mirrors :mod:`repro.search.probes`: the probe stream must come from
``cell_rng(seed, u_key(u), idx)``, never from unseeded or
constant-seeded generators inside a worker.
"""

import numpy as np


def evaluate_probe(seed, u_bits, sample_idx):
    bad_unseeded = np.random.default_rng()  # expect: R2
    bad_constant = np.random.default_rng(42)  # expect: R2
    bad_arith = np.random.default_rng(seed * 1000 + sample_idx)  # expect: R2
    ok_param = np.random.default_rng(seed)
    ok_suppressed = np.random.default_rng()  # repro-lint: disable=R2
    del u_bits
    return (bad_unseeded, bad_constant, bad_arith, ok_param, ok_suppressed)
