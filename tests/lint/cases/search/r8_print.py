"""R8 fixture: ``print()`` in search library code (not a CLI surface)."""


def report_frontier(result):
    print(result)  # expect: R8
    print(result)  # repro-lint: disable=R8 -- fixture
    return result
