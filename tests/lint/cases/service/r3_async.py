"""R3 fixture: blocking calls inside ``async def`` (service-scoped rule)."""

import time


async def handler(path):
    time.sleep(0.1)  # expect: R3
    data = open(path).read()  # expect: R3
    time.sleep(0.1)  # repro-lint: disable=R3 -- fixture

    def sync_helper():
        # Nested sync defs are shipped to an executor: not flagged.
        time.sleep(1.0)
        return open(path)

    return data, sync_helper


def plain_function(path):
    # Blocking is fine outside async defs.
    time.sleep(0.1)
    return open(path)
