"""Call-graph construction units: resolution, registries, roots, edges.

Graphs are built straight from in-memory sources (``extract_module`` +
``build_graph``) so every assertion pins one linking behaviour without
touching the filesystem.
"""

import ast

import pytest

from repro.lint.flow.engine import module_name_for
from repro.lint.flow.graph import build_graph
from repro.lint.flow.summary import extract_module

pytestmark = pytest.mark.lint


def build(sources):
    """``{module: source}`` -> ProjectGraph (rel_base = parent package)."""
    summaries = []
    displays = {}
    for module, source in sources.items():
        rel_base = module.rsplit(".", 1)[0] if "." in module else module
        summaries.append(
            extract_module(module, rel_base, ast.parse(source))
        )
        displays[module] = module.replace(".", "/") + ".py"
    return build_graph(summaries, displays)


def edges_of(graph, src):
    return {(e.dst, e.kind) for e in graph.out_edges.get(src, [])}


class TestPlainResolution:
    def test_same_module_and_imported_calls_link(self):
        graph = build({
            "pkg.a": "def helper():\n    return 1\n\n"
                     "def caller():\n    return helper()\n",
            "pkg.b": "from pkg.a import helper\n\n"
                     "def other():\n    return helper()\n",
        })
        assert ("pkg.a.helper", "call") in edges_of(graph, "pkg.a.caller")
        assert ("pkg.a.helper", "call") in edges_of(graph, "pkg.b.other")

    def test_typed_self_attribute_resolves_method(self):
        graph = build({
            "pkg.svc": (
                "class Cache:\n"
                "    def get(self, key):\n"
                "        return key\n"
                "\n"
                "class Service:\n"
                "    def __init__(self):\n"
                "        self.cache = Cache()\n"
                "    def lookup(self, key):\n"
                "        return self.cache.get(key)\n"
            ),
        })
        assert ("pkg.svc.Cache.get", "call") in edges_of(
            graph, "pkg.svc.Service.lookup"
        )

    def test_untyped_receiver_never_aliases(self):
        # A dict's .get must not link to any defined get method.
        graph = build({
            "pkg.svc": (
                "class Cache:\n"
                "    def get(self, key):\n"
                "        return key\n"
                "\n"
                "def use_dict(d):\n"
                "    return d.get('x')\n"
            ),
        })
        assert edges_of(graph, "pkg.svc.use_dict") == set()

    def test_constructor_call_links_to_init(self):
        graph = build({
            "pkg.svc": (
                "class Cache:\n"
                "    def __init__(self):\n"
                "        self.data = {}\n"
                "\n"
                "def make():\n"
                "    return Cache()\n"
            ),
        })
        assert ("pkg.svc.Cache.__init__", "call") in edges_of(
            graph, "pkg.svc.make"
        )


class TestRegistryDispatch:
    def test_dispatch_fans_out_to_registered_targets(self):
        graph = build({
            "pkg.reg": (
                "def first(x):\n    return x\n\n"
                "def best(x):\n    return x\n\n"
                "PARTITIONERS = {'first': first, 'best': best}\n\n"
                "def run(name, x):\n"
                "    return PARTITIONERS[name](x)\n"
            ),
        })
        assert edges_of(graph, "pkg.reg.run") == {
            ("pkg.reg.first", "registry"),
            ("pkg.reg.best", "registry"),
        }

    def test_cross_module_registry_fans_out(self):
        graph = build({
            "pkg.reg": (
                "def first(x):\n    return x\n\n"
                "PARTITIONERS = {'first': first}\n"
            ),
            "pkg.use": (
                "from pkg.reg import PARTITIONERS\n\n"
                "def run(name, x):\n"
                "    return PARTITIONERS[name](x)\n"
            ),
        })
        assert ("pkg.reg.first", "registry") in edges_of(
            graph, "pkg.use.run"
        )

    def test_argparse_func_dispatch(self):
        graph = build({
            "pkg.cli": (
                "import argparse\n\n"
                "def cmd_run(args):\n    return 0\n\n"
                "def main(argv):\n"
                "    parser = argparse.ArgumentParser()\n"
                "    sub = parser.add_subparsers()\n"
                "    p = sub.add_parser('run')\n"
                "    p.set_defaults(func=cmd_run)\n"
                "    args = parser.parse_args(argv)\n"
                "    return args.func(args)\n"
            ),
        })
        assert ("pkg.cli.cmd_run", "registry") in edges_of(
            graph, "pkg.cli.main"
        )


class TestRoots:
    def test_entry_points_from_main_guard_and_dunder_main(self):
        graph = build({
            "pkg.tool": (
                "def main():\n    return 0\n\n"
                "if __name__ == '__main__':\n"
                "    main()\n"
            ),
            "pkg.__main__": "X = 1\n",
            "pkg.plain": "Y = 2\n",
        })
        assert graph.entry_points() == [
            "pkg.__main__.<module>",
            "pkg.tool.<module>",
        ]

    def test_fork_roots_from_chunked_map_ref(self):
        graph = build({
            "pkg.run": (
                "def work(item):\n    return item\n\n"
                "def drive(pool, items):\n"
                "    return pool.chunked_map(work, items)\n"
            ),
        })
        assert graph.fork_roots() == ["pkg.run.work"]

    def test_submit_kind_depends_on_receiver_type(self):
        graph = build({
            "pkg.run": (
                "from concurrent.futures import ProcessPoolExecutor\n"
                "from concurrent.futures import ThreadPoolExecutor\n\n"
                "def work(item):\n    return item\n\n"
                "def fork_it(items):\n"
                "    pool = ProcessPoolExecutor()\n"
                "    return pool.submit(work, items)\n\n"
                "def thread_it(items):\n"
                "    pool = ThreadPoolExecutor()\n"
                "    return pool.submit(work, items)\n"
            ),
        })
        assert ("pkg.run.work", "fork") in edges_of(graph, "pkg.run.fork_it")
        assert ("pkg.run.work", "executor") in edges_of(
            graph, "pkg.run.thread_it"
        )
        assert graph.fork_roots() == ["pkg.run.work"]


class TestEdgesAndWitness:
    def test_executor_hop_and_ref_edges(self):
        graph = build({
            "pkg.svc": (
                "import asyncio\n\n"
                "def blocking():\n    return 1\n\n"
                "def apply(fn):\n    return fn()\n\n"
                "async def handler():\n"
                "    loop = asyncio.get_running_loop()\n"
                "    await loop.run_in_executor(None, blocking)\n\n"
                "def indirect():\n"
                "    return apply(blocking)\n"
            ),
        })
        assert ("pkg.svc.blocking", "executor") in edges_of(
            graph, "pkg.svc.handler"
        )
        assert {("pkg.svc.apply", "call"), ("pkg.svc.blocking", "ref")} == (
            edges_of(graph, "pkg.svc.indirect")
        )

    def test_witness_is_shortest_chain(self):
        graph = build({
            "pkg.chain": (
                "def leaf():\n    return 1\n\n"
                "def mid():\n    return leaf()\n\n"
                "def top():\n"
                "    mid()\n"
                "    return leaf()\n"
            ),
        })
        parents = graph.reach(["pkg.chain.top"], kinds=("call",))
        chain = graph.witness(parents, "pkg.chain.leaf")
        # BFS: the direct top -> leaf edge wins over top -> mid -> leaf
        assert [(e.src, e.dst) for e in chain] == [
            ("pkg.chain.top", "pkg.chain.leaf")
        ]

    def test_reach_respects_kind_filter(self):
        graph = build({
            "pkg.svc": (
                "import asyncio\n\n"
                "def blocking():\n    return 1\n\n"
                "async def handler():\n"
                "    loop = asyncio.get_running_loop()\n"
                "    await loop.run_in_executor(None, blocking)\n"
            ),
        })
        sync = graph.reach(
            ["pkg.svc.handler"], kinds=("call", "registry")
        )
        assert "pkg.svc.blocking" not in sync
        taint = graph.reach(
            ["pkg.svc.handler"],
            kinds=("call", "registry", "ref", "executor", "fork"),
        )
        assert "pkg.svc.blocking" in taint


class TestModuleNames:
    def test_module_name_for_package_layout(self, tmp_path):
        pkg = tmp_path / "toppkg" / "sub"
        pkg.mkdir(parents=True)
        (tmp_path / "toppkg" / "__init__.py").write_text("", encoding="utf-8")
        (pkg / "__init__.py").write_text("", encoding="utf-8")
        (pkg / "mod.py").write_text("X = 1\n", encoding="utf-8")
        assert module_name_for(pkg / "mod.py") == (
            "toppkg.sub.mod", "toppkg.sub"
        )
        assert module_name_for(pkg / "__init__.py") == (
            "toppkg.sub", "toppkg.sub"
        )

    def test_module_name_for_bare_file(self, tmp_path):
        path = tmp_path / "script.py"
        path.write_text("X = 1\n", encoding="utf-8")
        assert module_name_for(path) == ("script", "script")
