"""Taint-fact extraction, summary round-trips, and the incremental cache."""

import ast
import json

import pytest

from repro.lint.flow import engine
from repro.lint.flow.engine import flow_lint
from repro.lint.flow.graph import build_graph
from repro.lint.flow.summary import ModuleSummary, extract_module

pytestmark = pytest.mark.lint


def summarize(module, source):
    return extract_module(module, module, ast.parse(source))


class TestFactExtraction:
    def test_blocking_rng_and_sink_sites(self):
        summary = summarize(
            "m",
            "import time\n"
            "import os\n\n"
            "def slow():\n"
            "    time.sleep(1)\n\n"
            "def entropy():\n"
            "    return os.urandom(4)\n\n"
            "def persist(store, value):\n"
            "    store.put('k', value)\n\n"
            "def bench(path, payload):\n"
            "    write_bench_json(path, payload)\n",
        )
        fns = summary.functions
        assert [s.desc for s in fns["slow"].blocking] == ["time.sleep"]
        assert [s.desc for s in fns["entropy"].rng] == ["os.urandom"]
        assert fns["persist"].sinks and "put" in fns["persist"].sinks[0].desc
        assert fns["bench"].sinks

    def test_seeded_rng_is_not_a_source(self):
        summary = summarize(
            "m",
            "from numpy.random import default_rng\n\n"
            "def seeded(seed):\n"
            "    return default_rng(seed)\n\n"
            "def unseeded():\n"
            "    return default_rng()\n",
        )
        fns = summary.functions
        assert fns["seeded"].rng == []
        assert [s.desc for s in fns["unseeded"].rng] == [
            "default_rng() unseeded"
        ]

    def test_mutations_and_raises(self):
        summary = summarize(
            "m",
            "STATE = {}\n"
            "ITEMS = []\n\n"
            "def mutate(x):\n"
            "    STATE['k'] = x\n"
            "    ITEMS.append(x)\n\n"
            "def local_only(x):\n"
            "    d = {}\n"
            "    d['k'] = x\n\n"
            "def guard(x):\n"
            "    assert x >= 0\n"
            "    if x > 1:\n"
            "        raise ValueError(x)\n",
        )
        fns = summary.functions
        assert sorted(m.extra for m in fns["mutate"].mutations) == [
            "ITEMS", "STATE",
        ]
        assert fns["local_only"].mutations == []
        assert set(fns["guard"].raises) == {"AssertionError", "ValueError"}


class TestSummaryRoundTrip:
    SOURCE = (
        "import time\n"
        "from concurrent.futures import ProcessPoolExecutor\n\n"
        "REGISTRY = {'slow': None}\n\n"
        "def slow():\n"
        "    time.sleep(1)\n\n"
        "async def handler():\n"
        "    return slow()\n\n"
        "def drive(items):\n"
        "    pool = ProcessPoolExecutor()\n"
        "    return pool.submit(slow, items)\n"
    )

    def test_json_round_trip_preserves_graph(self):
        original = summarize("m", self.SOURCE)
        # through real JSON so tuples/lists normalize like the store does
        restored = ModuleSummary.from_json(
            json.loads(json.dumps(original.to_json()))
        )
        g1 = build_graph([original], {"m": "m.py"})
        g2 = build_graph([restored], {"m": "m.py"})
        assert set(g1.functions) == set(g2.functions)
        flat1 = {e for edges in g1.out_edges.values() for e in edges}
        flat2 = {e for edges in g2.out_edges.values() for e in edges}
        assert flat1 == flat2
        assert g1.fork_roots() == g2.fork_roots()


def _write_pkg(root):
    pkg = root / "svcpkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text('"""Fixture pkg."""\n',
                                     encoding="utf-8")
    (pkg / "helpers.py").write_text(
        '"""Helpers."""\n\nimport time\n\n\n'
        "def slow():\n    time.sleep(1)\n",
        encoding="utf-8",
    )
    service = pkg / "service"
    service.mkdir()
    (service / "__init__.py").write_text('"""Service."""\n',
                                        encoding="utf-8")
    (service / "handlers.py").write_text(
        '"""Handlers."""\n\nfrom svcpkg.helpers import slow\n\n\n'
        "async def handler(request):\n    return slow()\n",
        encoding="utf-8",
    )
    return pkg


class TestIncrementalCache:
    def test_cold_then_warm_then_invalidation(self, tmp_path):
        pkg = _write_pkg(tmp_path)
        cache = str(tmp_path / "flow.db")

        diags_cold, cold = flow_lint([str(pkg)], cache_path=cache)
        assert cold.cache_misses == cold.files > 0
        assert cold.cache_hits == 0
        assert [d.code for d in diags_cold] == ["R9"]

        engine._MEMO.clear()  # force the cache, not the in-run memo
        diags_warm, warm = flow_lint([str(pkg)], cache_path=cache)
        assert warm.cache_hits == warm.files == cold.files
        assert warm.cache_misses == 0
        assert diags_warm == diags_cold

        # touching one file invalidates exactly that file's summary
        (pkg / "helpers.py").write_text(
            '"""Helpers."""\n\nimport time\n\n\n'
            "def slow():\n    time.sleep(2)\n",
            encoding="utf-8",
        )
        engine._MEMO.clear()
        diags_edit, edit = flow_lint([str(pkg)], cache_path=cache)
        assert edit.cache_misses == 1
        assert edit.cache_hits == cold.files - 1
        assert [d.code for d in diags_edit] == ["R9"]

    def test_suppression_filters_flow_findings(self, tmp_path):
        pkg = _write_pkg(tmp_path)
        (pkg / "service" / "handlers.py").write_text(
            '"""Handlers."""\n\nfrom svcpkg.helpers import slow\n\n\n'
            "async def handler(request):\n"
            "    return slow()  # repro-lint: disable=R9\n",
            encoding="utf-8",
        )
        diags, _stats = flow_lint([str(pkg)])
        assert diags == []

    def test_select_limits_rules(self, tmp_path):
        pkg = _write_pkg(tmp_path)
        diags, _stats = flow_lint([str(pkg)], select=["R10"])
        assert diags == []

    def test_stats_report_graph_size(self, tmp_path):
        pkg = _write_pkg(tmp_path)
        _diags, stats = flow_lint([str(pkg)])
        assert stats.functions > 0
        assert stats.edges > 0
        payload = stats.to_json()
        assert payload["files"] == stats.files
        assert payload["wall_seconds"] >= 0.0
