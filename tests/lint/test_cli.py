"""CLI front-end tests: exit codes, formats, catalog, bench artifact."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint.cli import main as lint_main

pytestmark = pytest.mark.lint

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.py"
    path.write_text('"""Nothing to report."""\n\nX = 1\n', encoding="utf-8")
    return path


@pytest.fixture
def dirty_file(tmp_path):
    path = tmp_path / "dirty.py"
    path.write_text(
        '"""One R8 violation."""\n\n\ndef report(x):\n    print(x)\n',
        encoding="utf-8",
    )
    return path


def test_exit_zero_and_silent_on_clean_file(clean_file, capsys):
    assert lint_main([str(clean_file)]) == 0
    assert capsys.readouterr().out == ""


def test_exit_one_with_file_line_diagnostics(dirty_file, capsys):
    assert lint_main([str(dirty_file)]) == 1
    out = capsys.readouterr().out
    assert "R8[print-in-library]" in out
    assert ":5:" in out  # the print() line
    assert "1 diagnostic(s) found" in out


def test_json_format_is_parseable(dirty_file, capsys):
    assert lint_main([str(dirty_file), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert len(payload) == 1
    record = payload[0]
    assert record["code"] == "R8"
    assert record["line"] == 5
    assert record["path"].endswith("dirty.py")


def test_exit_two_on_missing_path(tmp_path, capsys):
    assert lint_main([str(tmp_path / "nope.txt")]) == 2
    assert "error:" in capsys.readouterr().err


def test_exit_two_on_syntax_error(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("def broken(:\n", encoding="utf-8")
    assert lint_main([str(bad)]) == 2
    assert "error:" in capsys.readouterr().err


def test_select_and_ignore_scope_the_run(dirty_file):
    assert lint_main([str(dirty_file), "--select", "R1"]) == 0
    assert lint_main([str(dirty_file), "--ignore", "R8"]) == 0


def test_list_rules_prints_catalog(capsys):
    assert lint_main(["--list-rules"]) == 0
    lines = capsys.readouterr().out.strip().splitlines()
    assert len(lines) == 8
    assert lines[0].startswith("R1[float-compare]")
    assert any("(project)" in line for line in lines)


def test_bench_json_artifact(dirty_file, tmp_path, capsys):
    artifact = tmp_path / "bench.json"
    assert lint_main([str(dirty_file), "--bench-json", str(artifact)]) == 1
    capsys.readouterr()
    data = json.loads(artifact.read_text(encoding="utf-8"))
    assert data["tool"] == "repro.lint"
    assert data["files"] == 1
    assert data["diagnostics"] == 1
    assert data["rules"] == 8
    assert data["wall_seconds"] >= 0.0
    assert data["within_budget"] is True


def test_repro_cli_forwards_lint_args(dirty_file, capsys):
    from repro.cli import main as repro_main

    assert repro_main(["lint", str(dirty_file), "--select", "R8"]) == 1
    assert "R8[print-in-library]" in capsys.readouterr().out


def test_repro_cli_forwards_leading_option(capsys):
    # argparse.REMAINDER chokes on a leading option; main() must forward
    # "repro lint --list-rules" verbatim.
    from repro.cli import main as repro_main

    assert repro_main(["lint", "--list-rules"]) == 0
    assert len(capsys.readouterr().out.strip().splitlines()) == 8


def test_python_dash_m_entry_point(dirty_file):
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.lint", str(dirty_file), "--format", "json"],
        capture_output=True,
        text=True,
        env=env,
        cwd=str(REPO_ROOT),
    )
    assert proc.returncode == 1, proc.stderr
    assert json.loads(proc.stdout)[0]["code"] == "R8"
