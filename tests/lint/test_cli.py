"""CLI front-end tests: exit codes, formats, catalog, bench artifact."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint.cli import main as lint_main

pytestmark = pytest.mark.lint

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.py"
    path.write_text('"""Nothing to report."""\n\nX = 1\n', encoding="utf-8")
    return path


@pytest.fixture
def dirty_file(tmp_path):
    path = tmp_path / "dirty.py"
    path.write_text(
        '"""One R8 violation."""\n\n\ndef report(x):\n    print(x)\n',
        encoding="utf-8",
    )
    return path


def test_exit_zero_and_silent_on_clean_file(clean_file, capsys):
    assert lint_main([str(clean_file)]) == 0
    assert capsys.readouterr().out == ""


def test_exit_one_with_file_line_diagnostics(dirty_file, capsys):
    assert lint_main([str(dirty_file)]) == 1
    out = capsys.readouterr().out
    assert "R8[print-in-library]" in out
    assert ":5:" in out  # the print() line
    assert "1 diagnostic(s) found" in out


def test_json_format_is_parseable(dirty_file, capsys):
    assert lint_main([str(dirty_file), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert len(payload) == 1
    record = payload[0]
    assert record["code"] == "R8"
    assert record["line"] == 5
    assert record["path"].endswith("dirty.py")


def test_exit_two_on_missing_path(tmp_path, capsys):
    assert lint_main([str(tmp_path / "nope.txt")]) == 2
    assert "error:" in capsys.readouterr().err


def test_exit_two_on_syntax_error(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("def broken(:\n", encoding="utf-8")
    assert lint_main([str(bad)]) == 2
    assert "error:" in capsys.readouterr().err


def test_select_and_ignore_scope_the_run(dirty_file):
    assert lint_main([str(dirty_file), "--select", "R1"]) == 0
    assert lint_main([str(dirty_file), "--ignore", "R8"]) == 0


def test_list_rules_prints_catalog(capsys):
    assert lint_main(["--list-rules"]) == 0
    lines = capsys.readouterr().out.strip().splitlines()
    assert len(lines) == 13
    assert lines[0].startswith("R1[float-compare]")
    assert any("(project)" in line for line in lines)


def test_bench_json_artifact(dirty_file, tmp_path, capsys):
    artifact = tmp_path / "bench.json"
    assert lint_main([str(dirty_file), "--bench-json", str(artifact)]) == 1
    capsys.readouterr()
    data = json.loads(artifact.read_text(encoding="utf-8"))
    assert data["tool"] == "repro.lint"
    assert data["files"] == 1
    assert data["diagnostics"] == 1
    assert data["rules"] == 13
    assert data["wall_seconds"] >= 0.0
    assert data["within_budget"] is True


def test_repro_cli_forwards_lint_args(dirty_file, capsys):
    from repro.cli import main as repro_main

    assert repro_main(["lint", str(dirty_file), "--select", "R8"]) == 1
    assert "R8[print-in-library]" in capsys.readouterr().out


def test_repro_cli_forwards_leading_option(capsys):
    # argparse.REMAINDER chokes on a leading option; main() must forward
    # "repro lint --list-rules" verbatim.
    from repro.cli import main as repro_main

    assert repro_main(["lint", "--list-rules"]) == 0
    assert len(capsys.readouterr().out.strip().splitlines()) == 13


def test_sarif_format_carries_rules_and_results(dirty_file, capsys):
    assert lint_main([str(dirty_file), "--format", "sarif"]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["version"] == "2.1.0"
    run = doc["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro.lint"
    assert len(run["tool"]["driver"]["rules"]) == 13
    result = run["results"][0]
    assert result["ruleId"] == "R8"
    region = result["locations"][0]["physicalLocation"]["region"]
    assert region["startLine"] == 5


def test_sarif_code_flow_from_witness(capsys):
    fixture = REPO_ROOT / "tests" / "lint" / "cases" / "flow_r9"
    assert lint_main([str(fixture), "--select", "R9",
                      "--format", "sarif"]) == 1
    doc = json.loads(capsys.readouterr().out)
    results = doc["runs"][0]["results"]
    assert {r["ruleId"] for r in results} == {"R9"}
    flows = results[0]["codeFlows"][0]["threadFlows"][0]["locations"]
    assert len(flows) >= 2  # root, call edge(s), blocking site
    uris = {
        loc["location"]["physicalLocation"]["artifactLocation"]["uri"]
        for loc in flows
    }
    assert any(uri.endswith("handlers.py") for uri in uris)
    assert any(uri.endswith("helpers.py") for uri in uris)


def test_explain_prints_witness_call_path(capsys):
    fixture = REPO_ROOT / "tests" / "lint" / "cases" / "flow_r9"
    assert lint_main([str(fixture), "--explain", "R9"]) == 1
    out = capsys.readouterr().out
    assert "witness call path:" in out
    assert "blocks: time.sleep" in out
    assert "R9[transitive-blocking]" in out


def test_explain_reports_absence(clean_file, capsys):
    assert lint_main([str(clean_file), "--explain", "R9"]) == 0
    assert "no R9 findings" in capsys.readouterr().out


def test_changed_outside_git_checkout_errors(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    assert lint_main(["--changed", str(tmp_path)]) == 2
    assert "error:" in capsys.readouterr().err


def test_changed_lints_only_touched_files(tmp_path, monkeypatch, capsys):
    subprocess.run(["git", "init", "-q", str(tmp_path)], check=True)
    clean = tmp_path / "committed.py"
    clean.write_text('"""Committed and unchanged."""\n\ndef ok(x):\n'
                     "    print(x)\n", encoding="utf-8")
    subprocess.run(["git", "-C", str(tmp_path), "add", "."], check=True)
    subprocess.run(
        ["git", "-C", str(tmp_path), "-c", "user.email=t@t",
         "-c", "user.name=t", "commit", "-qm", "seed"],
        check=True,
    )
    dirty = tmp_path / "touched.py"
    dirty.write_text('"""New file."""\n\n\ndef report(x):\n    print(x)\n',
                     encoding="utf-8")
    monkeypatch.chdir(tmp_path)
    assert lint_main(["--changed", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    # the committed R8 violation is out of scope; only the new file shows
    assert "touched.py" in out
    assert "committed.py" not in out


def test_changed_with_no_touched_files_is_clean(tmp_path, monkeypatch,
                                                capsys):
    subprocess.run(["git", "init", "-q", str(tmp_path)], check=True)
    (tmp_path / "a.py").write_text('"""A."""\nX = 1\n', encoding="utf-8")
    subprocess.run(["git", "-C", str(tmp_path), "add", "."], check=True)
    subprocess.run(
        ["git", "-C", str(tmp_path), "-c", "user.email=t@t",
         "-c", "user.name=t", "commit", "-qm", "seed"],
        check=True,
    )
    monkeypatch.chdir(tmp_path)
    assert lint_main(["--changed", str(tmp_path)]) == 0
    assert "no changed python files" in capsys.readouterr().out


def test_cache_flag_threads_through_lint_paths(dirty_file, tmp_path, capsys):
    cache = tmp_path / "flow.db"
    assert lint_main([str(dirty_file), "--cache", str(cache)]) == 1
    assert cache.exists()
    capsys.readouterr()
    # second run hits the summary cache; diagnostics are unchanged
    assert lint_main([str(dirty_file), "--cache", str(cache)]) == 1
    assert "R8[print-in-library]" in capsys.readouterr().out


def test_python_dash_m_entry_point(dirty_file):
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.lint", str(dirty_file), "--format", "json"],
        capture_output=True,
        text=True,
        env=env,
        cwd=str(REPO_ROOT),
    )
    assert proc.returncode == 1, proc.stderr
    assert json.loads(proc.stdout)[0]["code"] == "R8"
