"""Runtime invariant sanitizer tests.

The sanitizer must (a) stay silent when disarmed, (b) trip with a clear
:class:`InvariantViolation` on deliberately corrupted structures when
armed, and (c) be switchable both via ``perf.config`` and the
``REPRO_DEBUG_INVARIANTS`` environment variable.
"""

import math
import os
import subprocess
import sys
from pathlib import Path
from types import SimpleNamespace

import pytest

from repro._util.invariants import (
    InvariantViolation,
    check_partition,
    check_response_monotonicity,
    check_taskset,
    invariants_enabled,
)
from repro.core.partition import PartitionResult, ProcessorState
from repro.core.task import Subtask, TaskSet
from repro.perf.config import use_debug_invariants

pytestmark = pytest.mark.lint

REPO_ROOT = Path(__file__).resolve().parents[2]

NAN = float("nan")


def _fake_task(cost, period):
    return SimpleNamespace(cost=cost, period=period, tid=99)


class TestCheckTaskset:
    def test_accepts_valid_utilizations(self):
        check_taskset([_fake_task(1.0, 4.0), _fake_task(4.0, 4.0)])

    def test_rejects_overutilized_task(self):
        with pytest.raises(InvariantViolation, match="outside"):
            check_taskset([_fake_task(5.0, 4.0)])

    def test_rejects_zero_utilization(self):
        with pytest.raises(InvariantViolation):
            check_taskset([_fake_task(0.0, 4.0)])


class TestResponseMonotonicity:
    def test_accepts_nondecreasing(self):
        check_response_monotonicity([1.0, 1.0, 2.5])

    def test_rejects_decrease(self):
        with pytest.raises(InvariantViolation, match="decreased"):
            check_response_monotonicity([1.0, 2.0, 1.5])

    def test_nan_slots_are_skipped(self):
        check_response_monotonicity([1.0, NAN, 2.0])

    def test_decrease_across_nan_still_caught(self):
        with pytest.raises(InvariantViolation, match="decreased"):
            check_response_monotonicity([2.0, NAN, 1.0])

    def test_deadline_bound_enforced(self):
        with pytest.raises(InvariantViolation, match="deadline"):
            check_response_monotonicity([1.0, 5.0], deadlines=[2.0, 4.0])

    def test_deadline_boundary_tolerated(self):
        # Exactly at the deadline is schedulable, not a violation.
        check_response_monotonicity([2.0, 4.0], deadlines=[2.0, 4.0])


def _corrupt_partition(**kwargs):
    """Partition claiming success while a whole task is unassigned."""
    ts = TaskSet.from_pairs([(1, 4), (2, 8)])
    proc = ProcessorState(index=0)
    proc.add(Subtask.whole(ts[0]))  # ts[1] is silently dropped
    return dict(
        algorithm="corrupt",
        taskset=ts,
        processors=[proc],
        success=True,
        **kwargs,
    )


class TestCheckPartition:
    def test_trips_on_corrupted_partition(self):
        with use_debug_invariants(False):
            part = PartitionResult(**_corrupt_partition())
        with pytest.raises(InvariantViolation, match="corrupt"):
            check_partition(part)

    def test_construction_trips_when_armed(self):
        with use_debug_invariants(True):
            with pytest.raises(InvariantViolation):
                PartitionResult(**_corrupt_partition())

    def test_construction_silent_when_disarmed(self):
        with use_debug_invariants(False):
            PartitionResult(**_corrupt_partition())

    def test_failed_partitions_are_exempt(self):
        with use_debug_invariants(True):
            ts = TaskSet.from_pairs([(1, 4), (2, 8)])
            proc = ProcessorState(index=0)
            proc.add(Subtask.whole(ts[0]))
            PartitionResult(
                algorithm="gave-up",
                taskset=ts,
                processors=[proc],
                success=False,
                unassigned_tids=[1],
            )

    def test_synthetic_partitions_opt_out(self):
        with use_debug_invariants(True):
            PartitionResult(**_corrupt_partition(info={"synthetic": True}))

    def test_well_formed_partition_passes_armed(self):
        with use_debug_invariants(True):
            ts = TaskSet.from_pairs([(1, 4), (2, 8)])
            p0, p1 = ProcessorState(index=0), ProcessorState(index=1)
            p0.add(Subtask.whole(ts[0]))
            p1.add(Subtask.whole(ts[1]))
            part = PartitionResult(
                algorithm="manual",
                taskset=ts,
                processors=[p0, p1],
                success=True,
            )
        check_partition(part)


class TestToggles:
    def test_context_manager_arms_and_restores(self):
        before = invariants_enabled()
        with use_debug_invariants(True):
            assert invariants_enabled()
        with use_debug_invariants(False):
            assert not invariants_enabled()
        assert invariants_enabled() == before

    @pytest.mark.parametrize(
        "value, expected",
        [("1", "True"), ("true", "True"), ("", "False"), ("0", "False")],
    )
    def test_env_var_initialises_the_flag(self, value, expected):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        env["REPRO_DEBUG_INVARIANTS"] = value
        proc = subprocess.run(
            [
                sys.executable,
                "-c",
                "from repro.perf import config; print(config.debug_invariants)",
            ],
            capture_output=True,
            text=True,
            env=env,
            cwd=str(REPO_ROOT),
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == expected


class TestRtaIntegration:
    def test_rta_passes_under_armed_sanitizer(self):
        from repro.core.rta import response_times

        with use_debug_invariants(True):
            ts = TaskSet.from_pairs([(1, 4), (2, 8), (3, 12)])
            result = response_times([Subtask.whole(t) for t in ts])
        values = [r for r in result.responses if not math.isnan(r)]
        assert values == sorted(values)
