"""Tier-1 self-enforcement: the shipped source tree must lint clean.

This is the test that makes ``repro.lint`` load-bearing — any new
violation in ``src/repro`` fails the default test run, not just an
optional CI step.
"""

import subprocess
from pathlib import Path

import pytest

from repro.lint import all_rules, lint_paths

pytestmark = pytest.mark.lint

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"
ROOT = SRC.parents[1]


def test_source_tree_is_lint_clean():
    diagnostics = lint_paths([str(SRC)])
    assert diagnostics == [], "lint violations in src/repro:\n" + "\n".join(
        d.format() for d in diagnostics
    )


def test_no_bytecode_is_tracked_by_git():
    # A stale committed __pycache__ once shadowed the kernel package; the
    # CI workflow guards pushes, this guards the local tier-1 run.
    try:
        tracked = subprocess.run(
            ["git", "ls-files", "--", "src", "tests"],
            cwd=ROOT,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.splitlines()
    except (OSError, subprocess.CalledProcessError):
        pytest.skip("not a git checkout")
    offenders = [
        p for p in tracked if "__pycache__" in p or p.endswith(".pyc")
    ]
    assert offenders == []


def test_full_rule_catalog_is_registered():
    codes = [r.code for r in all_rules()]
    assert sorted(codes, key=lambda c: int(c[1:])) == [
        f"R{i}" for i in range(1, 14)
    ]
    assert codes == sorted(codes)  # catalog order is stable (lexicographic)
