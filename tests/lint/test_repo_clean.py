"""Tier-1 self-enforcement: the shipped source tree must lint clean.

This is the test that makes ``repro.lint`` load-bearing — any new
violation in ``src/repro`` fails the default test run, not just an
optional CI step.
"""

from pathlib import Path

import pytest

from repro.lint import all_rules, lint_paths

pytestmark = pytest.mark.lint

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def test_source_tree_is_lint_clean():
    diagnostics = lint_paths([str(SRC)])
    assert diagnostics == [], "lint violations in src/repro:\n" + "\n".join(
        d.format() for d in diagnostics
    )


def test_full_rule_catalog_is_registered():
    codes = [r.code for r in all_rules()]
    assert sorted(codes, key=lambda c: int(c[1:])) == [
        f"R{i}" for i in range(1, 14)
    ]
    assert codes == sorted(codes)  # catalog order is stable (lexicographic)
