"""Per-rule fixture tests.

Each fixture under ``tests/lint/cases/`` tags every line that must be
reported with ``# expect: <CODE>`` and also contains a suppressed
occurrence of the same violation (``# repro-lint: disable=...``).  The
tests assert the *exact* set of ``(code, line)`` diagnostics, so both the
positive detection and the suppression path are covered by equality.
"""

import re
from pathlib import Path

import pytest

from repro.lint import lint_paths

pytestmark = pytest.mark.lint

CASES = Path(__file__).parent / "cases"

_EXPECT_RE = re.compile(r"#\s*expect:\s*(R\d+)")


def _expected(target: Path):
    """Collect ``(code, line)`` pairs from ``# expect:`` tags."""
    files = sorted(target.rglob("*.py")) if target.is_dir() else [target]
    expected = set()
    for path in files:
        source = path.read_text(encoding="utf-8")
        for lineno, line in enumerate(source.splitlines(), start=1):
            for match in _EXPECT_RE.finditer(line):
                expected.add((match.group(1), lineno))
    return expected


def _found(target: Path, code: str):
    return {(d.code, d.line) for d in lint_paths([str(target)], select=[code])}


@pytest.mark.parametrize(
    "fixture, code",
    [
        ("r1_float_compare.py", "R1"),
        ("r2_rng.py", "R2"),
        ("search/r2_rng.py", "R2"),
        ("service/r3_async.py", "R3"),
        ("cluster/r3_async.py", "R3"),
        ("r4", "R4"),
        ("r5_frozen.py", "R5"),
        ("runner/r6_swallow.py", "R6"),
        ("obs/r6_swallow.py", "R6"),
        ("cluster/r6_swallow.py", "R6"),
        ("r7_api_drift.py", "R7"),
        ("r7_suppressed.py", "R7"),
        ("r8_print.py", "R8"),
        ("obs/r8_print.py", "R8"),
        ("search/r8_print.py", "R8"),
        ("flow_r9", "R9"),
        ("flow_r10", "R10"),
        ("flow_r11", "R11"),
        ("flow_r11_kernel", "R11"),
        ("flow_r12", "R12"),
        ("flow_r13", "R13"),
    ],
)
def test_fixture_diagnostics_match_expect_tags(fixture, code):
    target = CASES / fixture
    assert _found(target, code) == _expected(target)


def test_obs_cli_is_r8_exempt():
    # The obs CLI prints its summaries by design; the exemption is on the
    # path suffix, so this mirror file must produce no R8 diagnostics.
    assert _found(CASES / "obs" / "cli.py", "R8") == set()


def test_search_cli_is_r8_exempt():
    # The search CLI prints frontier/witness summaries by design; the
    # exemption is on the path suffix, so this mirror file must produce
    # no R8 diagnostics.
    assert _found(CASES / "search" / "cli.py", "R8") == set()


def test_r7_suppressed_fixture_really_has_drift():
    # Guard against the suppression test passing vacuously: with the
    # file-wide pragma stripped, the same source must produce drift.
    import ast

    from repro.lint.framework import LintedFile
    from repro.lint.rules import _check_api_drift

    path = CASES / "r7_suppressed.py"
    source = path.read_text(encoding="utf-8").replace("# repro-lint:", "#")
    lf = LintedFile(
        path=path,
        display_path=str(path),
        source=source,
        tree=ast.parse(source),
    )
    codes = {d.code for d in _check_api_drift(lf)}
    assert codes == {"R7"}


def test_native_kernel_backend_is_r11_sanctioned():
    # repro.core.kernel.native caches a per-process ctypes handle in
    # module globals by design (idempotent lazy load; the compiled .so is
    # shared via an on-disk cache, not via fork-inherited state), so it is
    # sanctioned by name rather than silenced with inline pragmas.
    from repro.lint.flow.rules import _R11_SANCTIONED_MODULES

    assert "repro.core.kernel.native" in _R11_SANCTIONED_MODULES


def test_r4_reports_both_directions_of_drift():
    diagnostics = lint_paths([str(CASES / "r4")], select=["R4"])
    messages = [d.message for d in diagnostics]
    assert any("not declared in" in m for m in messages)  # undeclared bump
    assert any("dead counter" in m for m in messages)  # declared, never used


def test_disable_all_silences_every_rule(tmp_path):
    victim = tmp_path / "victim.py"
    victim.write_text(
        "def report(value):\n"
        "    print(value)  # repro-lint: disable=all\n",
        encoding="utf-8",
    )
    assert lint_paths([str(victim)]) == []


def test_diagnostics_are_sorted_and_formatted():
    diagnostics = lint_paths([str(CASES / "r2_rng.py")], select=["R2"])
    assert diagnostics == sorted(diagnostics)
    shape = re.compile(r".+:\d+:\d+: R2\[unseeded-rng\] .+")
    for diag in diagnostics:
        assert shape.fullmatch(diag.format()), diag.format()
