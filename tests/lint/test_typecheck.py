"""Strict typing gate for the analysis kernel and the lint engine.

The mypy run skips when mypy is not installed (the offline test
container does not ship it); on developer machines with mypy it enforces
the ``[tool.mypy]`` strict profile over ``repro.core``, ``repro._util``
and ``repro.lint``.  The annotation audit below runs everywhere: it is
the container-safe floor under ``disallow_untyped_defs`` — every def in
the strict packages must annotate every parameter and its return.
"""

import ast
import subprocess
import sys
from pathlib import Path

import pytest

pytestmark = pytest.mark.lint

REPO_ROOT = Path(__file__).resolve().parents[2]

STRICT_PACKAGES = ("repro/core", "repro/_util", "repro/lint")


def _unannotated_defs(path: Path):
    tree = ast.parse(path.read_text(encoding="utf-8"))
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        gaps = []
        if node.returns is None:
            gaps.append("return")
        args = node.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            if arg.arg in ("self", "cls"):
                continue
            if arg.annotation is None:
                gaps.append(arg.arg)
        for vararg in (args.vararg, args.kwarg):
            if vararg is not None and vararg.annotation is None:
                gaps.append("*" + vararg.arg)
        if gaps:
            yield f"{path}:{node.lineno} {node.name}: {', '.join(gaps)}"


def test_strict_packages_have_full_annotations():
    findings = []
    for package in STRICT_PACKAGES:
        for path in sorted((REPO_ROOT / "src" / package).rglob("*.py")):
            findings.extend(_unannotated_defs(path))
    assert findings == [], "unannotated defs in strict packages:\n" + (
        "\n".join(findings)
    )


def test_strict_packages_typecheck():
    pytest.importorskip("mypy")
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "--config-file", "pyproject.toml"],
        capture_output=True,
        text=True,
        cwd=str(REPO_ROOT),
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
