"""Strict typing gate for the analysis kernel.

Skips when mypy is not installed (the offline test container does not
ship it); on developer machines with mypy this enforces the
``[tool.mypy]`` strict profile over ``repro.core`` and ``repro._util``.
"""

import subprocess
import sys
from pathlib import Path

import pytest

pytest.importorskip("mypy")

pytestmark = pytest.mark.lint

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_core_and_util_are_strictly_typed():
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "--config-file", "pyproject.toml"],
        capture_output=True,
        text=True,
        cwd=str(REPO_ROOT),
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
