"""Histograms: bucket edges, snapshot/delta/merge exactness, registry."""

import pytest

from repro.obs import metrics

pytestmark = pytest.mark.obs


@pytest.fixture(autouse=True)
def _zeroed_registry():
    metrics.reset()
    yield
    metrics.reset()


def _fresh(name, bounds=(1.0, 2.0, 4.0)):
    h = metrics.histogram(name, bounds)
    h.zero()
    return h


def test_observe_is_noop_when_disabled():
    h = _fresh("t_disabled")
    with metrics.use_metrics(False):
        h.observe(1.5)
    assert h.count == 0
    assert h.total_sum == 0.0


def test_bucket_edges_use_le_semantics():
    h = _fresh("t_edges")
    with metrics.use_metrics(True):
        h.observe(0.5)   # <= 1.0
        h.observe(1.0)   # == bound lands in that bucket (Prometheus le)
        h.observe(1.001)  # next bucket
        h.observe(4.0)
        h.observe(99.0)  # overflow bin
    assert h.counts == [2, 1, 1, 1]
    assert h.count == 5
    assert h.cumulative_counts() == [2, 3, 4, 5]


def test_bounds_must_be_strictly_increasing():
    with pytest.raises(ValueError):
        metrics.Histogram("bad", (1.0, 1.0, 2.0))
    with pytest.raises(ValueError):
        metrics.Histogram("bad", (2.0, 1.0))
    with pytest.raises(ValueError):
        metrics.Histogram("bad", ())


def test_registry_get_or_create_guards_bounds():
    h = _fresh("t_registry", (1.0, 2.0))
    assert metrics.histogram("t_registry") is h
    assert metrics.histogram("t_registry", (1.0, 2.0)) is h
    with pytest.raises(ValueError, match="different"):
        metrics.histogram("t_registry", (1.0, 3.0))
    with pytest.raises(ValueError, match="not registered"):
        metrics.histogram("t_never_registered")


def test_delta_since_reports_only_changed_histograms():
    h = _fresh("t_delta")
    _fresh("t_untouched")
    before = metrics.snapshot()
    with metrics.use_metrics(True):
        h.observe(1.5)
        h.observe(3.0)
    delta = metrics.delta_since(before)
    assert set(delta) == {"t_delta"}
    assert delta["t_delta"]["counts"] == [0, 1, 1, 0]
    assert delta["t_delta"]["sum"] == 4.5


def test_merge_is_exact_and_creates_missing():
    h = _fresh("t_merge")
    with metrics.use_metrics(True):
        h.observe(0.5)
    metrics.merge({
        "t_merge": {"bounds": [1.0, 2.0, 4.0], "counts": [1, 2, 0, 3],
                    "sum": 20.0},
        "t_from_worker": {"bounds": [10.0], "counts": [4, 0], "sum": 8.0},
    })
    assert h.counts == [2, 2, 0, 3]
    assert h.total_sum == 20.5
    created = metrics.histogram("t_from_worker")
    assert created.bounds == (10.0,)
    assert created.counts == [4, 0]


def test_merge_rejects_mismatched_bounds():
    _fresh("t_mismatch", (1.0, 2.0))
    with pytest.raises(ValueError, match="bounds differ"):
        metrics.merge({
            "t_mismatch": {"bounds": [5.0], "counts": [0, 0], "sum": 0.0}
        })


def test_split_then_merge_equals_single_stream():
    # The fork-pool invariant in miniature: two workers' deltas merged
    # into a parent equal one serial stream, bit for bit (integer values).
    serial = _fresh("t_serial")
    sharded = _fresh("t_sharded")
    observations = [1, 1, 2, 3, 5, 8, 13]
    with metrics.use_metrics(True):
        for value in observations:
            serial.observe(value)
        before = metrics.snapshot()
        for value in observations[:3]:
            sharded.observe(value)
        first = metrics.delta_since(before)
        sharded.zero()
        for value in observations[3:]:
            sharded.observe(value)
        second = metrics.delta_since(before)
        sharded.zero()
        metrics.merge(first)
        metrics.merge(second)
    assert sharded.counts == serial.counts
    assert sharded.total_sum == serial.total_sum


def test_standing_histograms_are_registered():
    names = set(metrics.all_histograms())
    assert {
        "rta_iterations", "admit_latency_seconds", "http_request_seconds",
        "store_get_seconds", "store_put_seconds",
    } <= names
