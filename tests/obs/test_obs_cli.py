"""``python -m repro obs summarize``: aggregation, tree, exit codes."""

import json

import pytest

from repro.obs import trace
from repro.obs.cli import (
    main,
    pick_trace,
    render_tree,
    stage_breakdown,
    summarize_payload,
)

pytestmark = pytest.mark.obs


@pytest.fixture
def trace_file(tmp_path):
    trace.drain()
    with trace.use_tracing(True):
        with trace.span("cli.sweep", jobs=2):
            with trace.span("runner.chunk", chunk=0):
                with trace.span("sweep.cell", level=0):
                    pass
            with trace.span("runner.chunk", chunk=1):
                pass
    path = str(tmp_path / "trace.jsonl")
    trace.flush_jsonl(path)
    return path


def test_stage_breakdown_self_time_excludes_children(trace_file):
    spans = trace.load_jsonl(trace_file)
    rows = {row["name"]: row for row in stage_breakdown(spans)}
    assert rows["runner.chunk"]["count"] == 2
    assert rows["sweep.cell"]["count"] == 1
    # self <= total always; the wrapper's self-time excludes its children
    for row in rows.values():
        assert row["self_s"] <= row["total_s"] + 1e-12
        assert row["max_s"] <= row["total_s"] + 1e-12


def test_pick_trace_selects_largest_and_validates_id(trace_file):
    spans = trace.load_jsonl(trace_file)
    selected = pick_trace(spans)
    assert len(selected) == len(spans)  # single trace in the file
    with pytest.raises(ValueError, match="not in file"):
        pick_trace(spans, "tdeadbeef-1")


def test_render_tree_nests_children(trace_file):
    spans = trace.load_jsonl(trace_file)
    lines = render_tree(pick_trace(spans))
    assert len(lines) == 4
    assert lines[0].startswith("cli.sweep")
    assert lines[1].startswith("  runner.chunk")
    assert lines[2].startswith("    sweep.cell")


def test_orphan_spans_render_as_roots():
    spans = [
        {"trace": "t1", "span": "s2", "parent": "s-evicted",
         "name": "orphan", "pid": 1, "t0": 0.0, "dur": 0.1},
    ]
    lines = render_tree(spans)
    assert len(lines) == 1 and lines[0].startswith("orphan")


def test_cli_text_and_json_formats(trace_file, capsys):
    assert main(["summarize", trace_file, "--top", "2"]) == 0
    text = capsys.readouterr().out
    assert "4 spans" in text
    assert "cli.sweep" in text and "slowest spans:" in text

    assert main(["summarize", trace_file, "--format", "json",
                 "--no-tree"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["spans_total"] == 4
    assert "tree" not in payload
    assert len(payload["slowest"]) <= 10


def test_cli_error_paths(tmp_path, capsys):
    missing = str(tmp_path / "nope.jsonl")
    assert main(["summarize", missing]) == 2
    assert "error:" in capsys.readouterr().err

    bad = tmp_path / "bad.jsonl"
    bad.write_text("not json\n")
    assert main(["summarize", str(bad)]) == 2

    ok = tmp_path / "ok.jsonl"
    ok.write_text(json.dumps(
        {"trace": "t1", "span": "s1", "parent": None, "name": "a",
         "pid": 1, "t0": 0.0, "dur": 0.1}
    ) + "\n")
    assert main(["summarize", str(ok), "--trace", "t-missing"]) == 2


def test_module_entrypoint_forwards(trace_file):
    # the `python -m repro obs …` path (leading-token forwarding in main)
    from repro.cli import main as repro_main

    assert repro_main(["obs", "summarize", trace_file, "--no-tree"]) == 0
