"""Sampling profiler: attribution, payload shape, provenance stamping."""

import json
import time

import pytest

from repro.obs.profile import (
    SamplingProfiler,
    profile_enabled_from_env,
    profile_payload,
)

pytestmark = pytest.mark.obs


def _busy_repro_function(deadline_s):
    # Lives in tests, but *calls into* the repro package so samples
    # attribute there; spin on a real kernel to be visible to the sampler.
    from repro.core.task import TaskSet

    ts = TaskSet.from_pairs([(1, 4), (2, 8), (6, 16)])
    stop_at = time.perf_counter() + deadline_s
    while time.perf_counter() < stop_at:
        ts.total_utilization  # noqa: B018 — the spinning is the point
    return ts


def test_profiler_catches_a_busy_kernel():
    with SamplingProfiler(interval=0.002) as prof:
        _busy_repro_function(0.25)
    assert prof.total_samples > 10
    ranked = prof.self_seconds()
    assert ranked, "expected at least one attributed bucket"
    # the hot bucket must be inside the repro package, not <other>
    hot = next(iter(ranked))
    assert hot != "<other>" and hot.startswith("repro.")
    assert prof.wall_seconds >= 0.25
    assert prof.top(3)  # human-readable lines render


def test_profiler_lifecycle_guards():
    prof = SamplingProfiler(interval=0.01)
    with pytest.raises(RuntimeError):
        prof.stop()
    prof.start()
    with pytest.raises(RuntimeError):
        prof.start()
    prof.stop()
    with pytest.raises(ValueError):
        SamplingProfiler(interval=0.0)


def test_profile_payload_shape_and_provenance(tmp_path):
    from repro.perf.telemetry import write_bench_json

    with SamplingProfiler(interval=0.002) as prof:
        _busy_repro_function(0.05)
    payload = profile_payload(
        prof,
        config={"samples": 10, "jobs": 2},
        extra={"stage_seconds": {"sweep": 0.05}},
    )
    assert payload["kind"] == "obs_profile"
    assert payload["config"] == {"samples": 10, "jobs": 2}
    assert payload["interval_seconds"] == 0.002
    assert payload["samples_total"] == prof.total_samples
    assert payload["stage_seconds"] == {"sweep": 0.05}
    out = tmp_path / "BENCH_obs.json"
    write_bench_json(str(out), payload)
    stored = json.loads(out.read_text())
    assert stored["kind"] == "obs_profile"
    assert "provenance" in stored  # stamped like every bench artifact


def test_profile_env_flag(monkeypatch):
    monkeypatch.delenv("REPRO_PROFILE", raising=False)
    assert profile_enabled_from_env() is False
    monkeypatch.setenv("REPRO_PROFILE", "0")
    assert profile_enabled_from_env() is False
    monkeypatch.setenv("REPRO_PROFILE", "1")
    assert profile_enabled_from_env() is True
