"""Prometheus text exposition: parse it back and check the invariants."""

import re

import pytest

from repro.obs import metrics

pytestmark = pytest.mark.obs

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[^ ]+)$"
)
_LABEL_RE = re.compile(r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>[^"]*)"')


def parse_exposition(text):
    """Parse the 0.0.4 text format into samples + per-family types.

    Returns ``(samples, types)`` where samples is a list of
    ``(name, labels_dict, value_str)`` and types maps family → TYPE.
    Raises AssertionError on any line that is neither a comment nor a
    well-formed sample — the test's definition of "valid exposition".
    """
    samples = []
    types = {}
    assert text.endswith("\n"), "exposition must end with a newline"
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            family, _, kind = rest.partition(" ")
            types[family] = kind
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        assert match, f"malformed sample line: {line!r}"
        labels = dict(
            (m.group("key"), m.group("value"))
            for m in _LABEL_RE.finditer(match.group("labels") or "")
        )
        value = match.group("value")
        assert value == "+Inf" or float(value) is not None
        samples.append((match.group("name"), labels, value))
    return samples, types


@pytest.fixture(autouse=True)
def _zeroed_registry():
    metrics.reset()
    yield
    metrics.reset()


def _series(samples, name):
    return [(labels, value) for n, labels, value in samples if n == name]


def test_histogram_family_is_cumulative_and_consistent():
    h = metrics.histogram("prom_demo_seconds", (0.1, 0.5, 1.0))
    h.zero()
    with metrics.use_metrics(True):
        for value in (0.05, 0.3, 0.3, 0.7, 2.0):
            h.observe(value)
    samples, types = parse_exposition(metrics.render_prometheus())
    assert types["repro_prom_demo_seconds"] == "histogram"
    buckets = _series(samples, "repro_prom_demo_seconds_bucket")
    les = [labels["le"] for labels, _ in buckets]
    assert les == ["0.1", "0.5", "1", "+Inf"]
    counts = [int(value) for _, value in buckets]
    assert counts == sorted(counts), "bucket counts must be monotonic"
    assert counts == [1, 3, 4, 5]
    (_, count_value), = _series(samples, "repro_prom_demo_seconds_count")
    assert int(count_value) == 5 == counts[-1]
    (_, sum_value), = _series(samples, "repro_prom_demo_seconds_sum")
    assert float(sum_value) == pytest.approx(3.35)


def test_counters_become_one_labeled_family():
    samples, types = parse_exposition(
        metrics.render_prometheus(
            counters={"rta_calls": 42, "svc_requests": 7}
        )
    )
    assert types["repro_events_total"] == "counter"
    events = {
        labels["event"]: int(value)
        for labels, value in _series(samples, "repro_events_total")
    }
    assert events == {"rta_calls": 42, "svc_requests": 7}


def test_gauges_and_labeled_counters():
    samples, types = parse_exposition(
        metrics.render_prometheus(
            gauges={"inflight": 3.0, "uptime_seconds": 12.5},
            labeled_counters={
                "http_requests": [
                    ({"endpoint": "GET /metrics"}, 2.0),
                    ({"endpoint": "POST /v1/admit"}, 5.0),
                ],
            },
        )
    )
    assert types["repro_inflight"] == "gauge"
    (_, inflight), = _series(samples, "repro_inflight")
    assert int(inflight) == 3
    requests = _series(samples, "repro_http_requests")
    assert ({"endpoint": "GET /metrics"}, "2") in requests
    assert ({"endpoint": "POST /v1/admit"}, "5") in requests


def test_label_values_are_escaped():
    text = metrics.render_prometheus(
        labeled_counters={
            "weird": [({"k": 'a"b\\c\nd'}, 1.0)],
        }
    )
    assert '\\"' in text and "\\\\" in text and "\\n" in text
    # and the physical line must not be broken by the newline in the value
    sample_lines = [
        line for line in text.splitlines() if line.startswith("repro_weird")
    ]
    assert len(sample_lines) == 1
