"""Trace context + histogram deltas must survive the fork pool.

The acceptance criteria of the observability layer: a ``--jobs N`` sweep
yields ONE coherent trace with spans from every worker pid, and the
RTA-iteration histogram merges bit-identically to the serial run.
"""

import pytest

from repro.analysis.acceptance import acceptance_sweep
from repro.core.bounds import best_bound_value, rmts_bound_cap
from repro.obs import metrics, trace, use_observability
from repro.taskgen.generators import TaskSetGenerator

pytestmark = pytest.mark.obs


def _algorithms():
    # A real RTA-driven test plus a cheap bound test, so the sweep
    # exercises the instrumented response_time() kernel.
    from repro.analysis.algorithms import standard_algorithms

    return standard_algorithms()


def _run_sweep(jobs):
    trace.drain()
    metrics.reset()
    gen = TaskSetGenerator(n=8)
    with use_observability(True):
        with trace.span("test.sweep", jobs=jobs):
            sweep = acceptance_sweep(
                _algorithms(),
                gen,
                processors=2,
                u_grid=[0.7, 0.8],
                samples=4,
                seed=7,
                jobs=jobs,
            )
    spans = trace.drain()
    rta_state = metrics.histogram("rta_iterations").state()
    metrics.reset()
    return sweep, spans, rta_state


def test_parallel_sweep_yields_one_coherent_trace():
    sweep_serial, _, _ = _run_sweep(jobs=1)
    sweep_parallel, spans, _ = _run_sweep(jobs=2)
    # the parallel curves are bit-identical (pre-existing guarantee) …
    assert sweep_parallel.curves == sweep_serial.curves
    # … and now so is the trace: every span shares the root's trace id.
    trace_ids = {record["trace"] for record in spans}
    assert len(trace_ids) == 1
    by_name = {}
    for record in spans:
        by_name.setdefault(record["name"], []).append(record)
    assert "test.sweep" in by_name
    chunks = by_name["runner.chunk"]
    cells = by_name["sweep.cell"]
    assert len(cells) == 2 * 4  # one per (level, sample) cell
    # chunk spans came from forked workers, not the parent …
    parent_pid = by_name["test.sweep"][0]["pid"]
    worker_pids = {record["pid"] for record in chunks}
    assert worker_pids and parent_pid not in worker_pids
    # … and every cell span is parented under some chunk span.
    chunk_ids = {record["span"] for record in chunks}
    assert all(record["parent"] in chunk_ids for record in cells)


def test_rta_iteration_histogram_merges_bit_exactly():
    _, _, serial_state = _run_sweep(jobs=1)
    _, _, parallel_state = _run_sweep(jobs=2)
    assert serial_state["counts"] == parallel_state["counts"]
    # iteration counts are integers, so even the float sum is bit-exact
    assert serial_state["sum"] == parallel_state["sum"]
    assert sum(serial_state["counts"]) > 0


def test_disabled_observability_ships_nothing_through_the_pool():
    trace.drain()
    metrics.reset()
    gen = TaskSetGenerator(n=6)
    with use_observability(False):
        acceptance_sweep(
            _algorithms(),
            gen,
            processors=2,
            u_grid=[0.7],
            samples=4,
            seed=1,
            jobs=2,
        )
    assert trace.buffered_count() == 0
    assert metrics.histogram("rta_iterations").count == 0


def test_bounds_kernels_still_agree_after_instrumentation():
    # Sanity: instrumentation must not perturb analysis results.
    gen = TaskSetGenerator(n=8)
    ts = gen.generate(u_norm=0.7, processors=2, seed=3)
    with use_observability(True):
        on = (best_bound_value(ts), rmts_bound_cap(len(ts)))
    with use_observability(False):
        off = (best_bound_value(ts), rmts_bound_cap(len(ts)))
    assert on == off
