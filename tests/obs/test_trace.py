"""Span tracing: nesting, ids, ring buffer, JSONL round-trip."""

import os

import pytest

from repro.obs import trace

pytestmark = pytest.mark.obs


@pytest.fixture(autouse=True)
def _clean_buffer():
    trace.drain()
    yield
    trace.drain()


def test_disabled_span_records_nothing():
    with trace.use_tracing(False):
        with trace.span("rta.probe", tid=3):
            pass
    assert trace.buffered_count() == 0


def test_span_records_name_pid_duration_attrs():
    with trace.use_tracing(True):
        with trace.span("svc.request", endpoint="GET /metrics") as sp:
            sp.set("status", 200)
    (record,) = trace.drain()
    assert record["name"] == "svc.request"
    assert record["pid"] == os.getpid()
    assert record["dur"] >= 0.0
    assert record["attrs"] == {"endpoint": "GET /metrics", "status": 200}


def test_nested_spans_share_trace_and_link_parents():
    with trace.use_tracing(True):
        with trace.span("cli.sweep"):
            with trace.span("runner.chunk"):
                with trace.span("sweep.cell"):
                    pass
    cell, chunk, sweep = trace.drain()  # innermost exits first
    assert sweep["parent"] is None
    assert chunk["parent"] == sweep["span"]
    assert cell["parent"] == chunk["span"]
    assert sweep["trace"] == chunk["trace"] == cell["trace"]
    assert len({sweep["span"], chunk["span"], cell["span"]}) == 3


def test_sibling_spans_get_fresh_trace_ids():
    with trace.use_tracing(True):
        with trace.span("a"):
            pass
        with trace.span("b"):
            pass
    first, second = trace.drain()
    assert first["trace"] != second["trace"]


def test_exception_is_recorded_and_reraised():
    with trace.use_tracing(True):
        with pytest.raises(ValueError):
            with trace.span("svc.compute_admit"):
                raise ValueError("boom")
    (record,) = trace.drain()
    assert record["attrs"]["error"] == "ValueError"


def test_ring_buffer_drops_oldest():
    old = trace.set_buffer_limit(4)
    try:
        with trace.use_tracing(True):
            for i in range(10):
                with trace.span("s", i=i):
                    pass
        spans = trace.drain()
        assert [s["attrs"]["i"] for s in spans] == [6, 7, 8, 9]
    finally:
        trace.set_buffer_limit(old)


def test_activate_adopts_shipped_context():
    with trace.use_tracing(True):
        with trace.span("parent"):
            ctx = trace.current_context()
        with trace.activate(ctx):
            with trace.span("child"):
                pass
    parent, child = trace.drain()
    assert child["trace"] == parent["trace"]
    assert child["parent"] == parent["span"]


def test_activate_none_is_noop():
    with trace.use_tracing(True):
        with trace.activate(None):
            assert trace.current_context() is None


def test_current_context_none_when_disabled():
    with trace.use_tracing(False):
        assert trace.current_context() is None


def test_flush_and_load_jsonl_roundtrip(tmp_path):
    with trace.use_tracing(True):
        with trace.span("outer", k="v"):
            with trace.span("inner"):
                pass
    path = str(tmp_path / "sub" / "trace.jsonl")
    written = trace.flush_jsonl(path)  # parent dir is created
    assert written == 2
    assert trace.buffered_count() == 0
    loaded = trace.load_jsonl(path)
    assert [r["name"] for r in loaded] == ["inner", "outer"]
    assert loaded[1]["attrs"] == {"k": "v"}


def test_flush_append_accumulates(tmp_path):
    path = str(tmp_path / "trace.jsonl")
    with trace.use_tracing(True):
        with trace.span("first"):
            pass
        trace.flush_jsonl(path)
        with trace.span("second"):
            pass
        trace.flush_jsonl(path, append=True)
    assert [r["name"] for r in trace.load_jsonl(path)] == ["first", "second"]


def test_load_jsonl_rejects_garbage(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"ok": 1}\nnot json\n')
    with pytest.raises(ValueError, match="bad.jsonl:2"):
        trace.load_jsonl(str(path))


def test_set_buffer_limit_rejects_nonpositive():
    with pytest.raises(ValueError):
        trace.set_buffer_limit(0)
