"""Bench-drift gate: tolerance parsing, classification, CLI exit codes."""

import json

import pytest

from repro.perf.bench_check import (
    DEFAULT_IGNORES,
    DEFAULT_RULES,
    Tolerance,
    classify,
    compare_values,
    flatten,
    main,
    pair_artifacts,
    parse_tolerance,
    parse_tolerances,
)

pytestmark = pytest.mark.ci


# -- tolerance parsing ------------------------------------------------------


def test_parse_percent_is_relative():
    tol = parse_tolerance("5%")
    assert tol.relative == pytest.approx(0.05)
    assert tol.absolute is None
    assert tol.describe() == "5%"


def test_parse_number_is_absolute():
    tol = parse_tolerance("0.01")
    assert tol.absolute == 0.01
    assert tol.relative is None


def test_parse_zero_means_exact():
    tol = parse_tolerance("0")
    assert tol.absolute == 0.0
    assert tol.allows(1.0, 1.0)
    assert not tol.allows(1.0, 1.0000001)


@pytest.mark.parametrize("bad", ["", "abc", "5%%", "-1", "-2%"])
def test_parse_rejects_garbage(bad):
    with pytest.raises(ValueError):
        parse_tolerance(bad)


def test_tolerance_needs_exactly_one_kind():
    with pytest.raises(ValueError):
        Tolerance()
    with pytest.raises(ValueError):
        Tolerance(relative=0.1, absolute=0.1)


def test_relative_allows_scales_with_baseline():
    tol = Tolerance(relative=0.10)
    assert tol.allows(100.0, 109.9)
    assert not tol.allows(100.0, 111.0)
    assert tol.allows(0.5, 0.54)


def test_parse_tolerances_rules_first_match_wins():
    rules = parse_tolerances("*seconds*=50%, counters.*=0")
    assert rules[0][0] == "*seconds*"
    assert rules[0][1].relative == pytest.approx(0.5)
    assert rules[1][1].absolute == 0.0
    with pytest.raises(ValueError, match="PATTERN=VALUE"):
        parse_tolerances("just-a-pattern")
    with pytest.raises(ValueError, match="empty pattern"):
        parse_tolerances("=5%")
    with pytest.raises(ValueError):
        parse_tolerances(" , ")


# -- flatten + classification ----------------------------------------------


def test_flatten_uses_dots_and_list_indices():
    flat = flatten({"a": {"b": 1}, "c": [10, {"d": 2}]})
    assert flat == {"a.b": 1, "c[0]": 10, "c[1].d": 2}


def test_classify_statuses():
    baseline = {
        "counters": {"rta_calls": 100},
        "wall_seconds_min": 1.0,
        "gone": 5,
        "curves": {"RM-TS": [1.0, 0.5]},
    }
    fresh = {
        "counters": {"rta_calls": 101},          # drift (exact rule)
        "wall_seconds_min": 1.8,                 # within 100% seconds rule
        "new_key": "hello",                      # added → warning
        "curves": {"RM-TS": [1.0, 0.5]},         # equal
    }
    findings = {f.path: f for f in classify(baseline, fresh)}
    assert findings["counters.rta_calls"].status == "drift"
    assert findings["wall_seconds_min"].status == "within_tolerance"
    assert findings["gone"].status == "missing"
    assert findings["gone"].is_drift
    assert findings["new_key"].status == "added"
    assert not findings["new_key"].is_drift
    assert findings["curves.RM-TS[0]"].status == "equal"


def test_classify_ignores_noise_paths():
    baseline = {
        "provenance": {"code_version": "a"},
        "host": {"cpu_count": 1, "note": "x"},
        "modes": {"serial": {"wall_seconds_all": [1.0, 2.0]}},
        "speedups_vs_legacy": {"parallel": 2.0},
        "real": 1,
    }
    fresh = {
        "provenance": {"code_version": "b"},
        "host": {"cpu_count": 64, "note": "y"},
        "modes": {"serial": {"wall_seconds_all": [9.0]}},
        "speedups_vs_legacy": {"parallel": 99.0},
        "real": 1,
    }
    findings = classify(baseline, fresh)
    assert [f.path for f in findings] == ["real"]
    assert findings[0].status == "equal"


def test_non_numeric_leaves_compare_exactly():
    assert compare_values(
        "kind", "bench_sweep", "bench_sweep", Tolerance(absolute=0.0)
    ).status == "equal"
    assert compare_values(
        "kind", "bench_sweep", "bench_store", Tolerance(relative=10.0)
    ).status == "drift"
    # booleans are not numbers: True must not be "within 100%" of 0
    assert compare_values(
        "flag", True, False, Tolerance(relative=1.0)
    ).status == "drift"


def test_custom_rules_precede_defaults():
    rules = parse_tolerances("counters.*=5%") + list(DEFAULT_RULES)
    findings = {
        f.path: f
        for f in classify(
            {"counters": {"rta_calls": 100}},
            {"counters": {"rta_calls": 103}},
            rules=rules,
        )
    }
    assert findings["counters.rta_calls"].status == "within_tolerance"


def test_default_ignores_are_stable():
    # the nightly workflow depends on these staying ignored
    assert "provenance.*" in DEFAULT_IGNORES
    assert "host.*" in DEFAULT_IGNORES


# -- CLI --------------------------------------------------------------------


def _write(path, payload):
    path.write_text(json.dumps(payload))
    return str(path)


def test_cli_ok_and_drift_exit_codes(tmp_path, capsys):
    base = _write(tmp_path / "BENCH_x.json",
                  {"kind": "x", "counters": {"calls": 5}, "seconds": 1.0})
    same = _write(tmp_path / "BENCH_same.json",
                  {"kind": "x", "counters": {"calls": 5}, "seconds": 1.9})
    assert main(["check", "--baseline", base, "--fresh", same]) == 0
    out = capsys.readouterr().out
    assert "ok" in out

    drifted = _write(tmp_path / "BENCH_drift.json",
                     {"kind": "x", "counters": {"calls": 6}, "seconds": 1.0})
    assert main(["check", "--baseline", base, "--fresh", drifted]) == 1
    out = capsys.readouterr().out
    assert "DRIFT" in out and "counters.calls" in out


def test_cli_directory_pairing_and_json_report(tmp_path, capsys):
    basedir = tmp_path / "base"
    freshdir = tmp_path / "fresh"
    basedir.mkdir()
    freshdir.mkdir()
    _write(basedir / "BENCH_a.json", {"v": 1})
    _write(basedir / "BENCH_only_base.json", {"v": 1})
    _write(freshdir / "BENCH_a.json", {"v": 1, "extra": 2})
    _write(freshdir / "BENCH_only_fresh.json", {"v": 9})
    code = main(["check", "--baseline", str(basedir),
                 "--fresh", str(freshdir), "--json"])
    assert code == 0
    report = json.loads(capsys.readouterr().out)
    assert list(report["artifacts"]) == ["BENCH_a.json"]
    assert report["artifacts"]["BENCH_a.json"]["added"] == ["extra"]
    assert report["drift"] is False


def test_cli_errors_exit_2(tmp_path, capsys):
    empty = tmp_path / "empty"
    empty.mkdir()
    assert main(["check", "--baseline", str(empty),
                 "--fresh", str(empty)]) == 2
    assert "no artifact pairs" in capsys.readouterr().err

    bad = tmp_path / "BENCH_bad.json"
    bad.write_text("{broken")
    good = _write(tmp_path / "BENCH_good.json", {"v": 1})
    assert main(["check", "--baseline", str(bad), "--fresh", good]) == 2

    listy = tmp_path / "BENCH_list.json"
    listy.write_text("[1, 2]")
    assert main(["check", "--baseline", str(listy), "--fresh", good]) == 2


def test_pair_artifacts_by_basename(tmp_path):
    basedir = tmp_path / "b"
    freshdir = tmp_path / "f"
    basedir.mkdir()
    freshdir.mkdir()
    _write(basedir / "BENCH_sweep.json", {})
    _write(freshdir / "BENCH_sweep.json", {})
    pairs = pair_artifacts(str(basedir), str(freshdir))
    assert [p[0] for p in pairs] == ["BENCH_sweep.json"]


def test_committed_baselines_self_compare_clean():
    # The real committed artifacts compared against themselves must be
    # drift-free — guards the ignore/tolerance defaults against the
    # actual nightly inputs.
    import os

    results = os.path.join(
        os.path.dirname(__file__), "..", "..", "benchmarks", "results"
    )
    if not os.path.isdir(results):
        pytest.skip("no committed benchmark artifacts")
    assert main(["check", "--baseline", results, "--fresh", results]) == 0


def test_wrapper_script_exists_and_targets_check():
    import os

    script = os.path.join(
        os.path.dirname(__file__), "..", "..", "scripts",
        "check_bench_drift.py",
    )
    source = open(script).read()
    assert 'main(["check", *sys.argv[1:]])' in source
