"""Property tests for the deflatable-bound property (Lemma 1).

A D-PUB computed from the *original* task set must remain a valid
utilization bound for any task set obtained by decreasing execution times.
We validate against exact RTA: whenever the deflated set's utilization is
at or below the original bound value, it must pass exact uniprocessor
schedulability — for every implemented bound.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bounds import ALL_BOUNDS
from repro.core.rta import is_schedulable
from repro.core.task import Subtask, Task, TaskSet
from repro.sim.uniproc import simulate_uniprocessor
from repro.taskgen.generators import TaskSetGenerator


def deflate_to(taskset: TaskSet, target_total: float, rng) -> TaskSet:
    """Randomly decrease costs so the total utilization hits *target*."""
    utils = taskset.utilizations()
    weights = rng.random(len(taskset)) + 1e-3
    # scale each task's utilization toward the target, random mixture
    scale = target_total / float(utils.sum())
    mix = np.clip(scale * weights / weights.mean(), 0.0, 1.0)
    # ensure sum <= target by a final uniform correction
    new_utils = utils * mix
    total = float(new_utils.sum())
    if total > target_total:
        new_utils *= target_total / total
    tasks = []
    for t, u in zip(taskset, new_utils):
        cost = max(float(u * t.period), 1e-9)
        tasks.append(Task(cost=cost, period=t.period))
    return TaskSet(tasks)


@given(st.integers(0, 20_000))
@settings(max_examples=60, deadline=None)
def test_deflated_sets_below_bound_are_rta_schedulable(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 10))
    model = ["loguniform", "harmonic", "kchain", "discrete"][
        int(rng.integers(0, 4))
    ]
    gen = TaskSetGenerator(n=n, period_model=model, k=min(2, n))
    base = gen.generate(u_norm=1.0, processors=2, seed=rng)  # U(tau) = 2
    for bound in ALL_BOUNDS:
        lam = bound.value(base)
        target = lam * float(rng.uniform(0.3, 1.0))
        deflated = deflate_to(base, target, rng)
        assert deflated.total_utilization <= lam + 1e-9
        subs = [Subtask.whole(t) for t in deflated]
        assert is_schedulable(subs), (
            f"{bound.name}: deflated set below Lambda={lam:.4f} "
            f"(U={deflated.total_utilization:.4f}) failed exact RTA"
        )


@given(st.integers(0, 20_000))
@settings(max_examples=15, deadline=None)
def test_deflated_harmonic_sets_simulate_cleanly(seed):
    """End-to-end: harmonic bound 1.0, deflation, simulation — no misses."""
    rng = np.random.default_rng(seed)
    gen = TaskSetGenerator(n=6, period_model="harmonic", tmin=8.0)
    base = gen.generate(u_norm=1.0, processors=2, seed=rng)
    deflated = deflate_to(base, float(rng.uniform(0.5, 0.999)), rng)
    sim = simulate_uniprocessor(deflated, horizon=None)
    assert sim.ok


def test_bound_values_stable_under_deflation():
    """The bound *value* itself only depends on periods/N, so deflation
    never changes it — the formal basis for using Lambda(tau) on deflated
    per-processor subsets."""
    gen = TaskSetGenerator(n=8, period_model="kchain", k=2)
    ts = gen.generate(u_norm=0.8, processors=4, seed=5)
    shrunk = ts.scaled_costs(0.25)
    for bound in ALL_BOUNDS:
        assert bound.value(ts) == pytest.approx(bound.value(shrunk))
