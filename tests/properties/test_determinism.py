"""Determinism properties: the whole pipeline is a pure function of
(inputs, seed).

Reproducibility is a first-class claim of this repository (every number
in EXPERIMENTS.md regenerates exactly); these tests pin it at every layer.
"""

import numpy as np
import pytest

from repro.core.baselines.edf_split import partition_edf_split
from repro.core.baselines.spa import partition_spa2
from repro.core.rmts import partition_rmts
from repro.core.rmts_light import partition_rmts_light
from repro.sim.engine import simulate_partition
from repro.sim.proportional import simulate_pfair
from repro.taskgen.generators import TaskSetGenerator
from repro.taskgen.workloads import build_workload


def partitions_equal(a, b):
    if a.success != b.success or a.unassigned_tids != b.unassigned_tids:
        return False
    for pa, pb in zip(a.processors, b.processors):
        sa = sorted((s.parent.tid, s.index, s.cost, s.deadline)
                    for s in pa.subtasks)
        sb = sorted((s.parent.tid, s.index, s.cost, s.deadline)
                    for s in pb.subtasks)
        if sa != sb:
            return False
    return True


@pytest.mark.parametrize(
    "algorithm",
    [
        lambda ts, m: partition_rmts(ts, m),
        lambda ts, m: partition_rmts_light(ts, m),
        lambda ts, m: partition_spa2(ts, m),
        lambda ts, m: partition_edf_split(ts, m),
    ],
    ids=["rmts", "rmts-light", "spa2", "edf-ws"],
)
def test_partitioning_is_deterministic(algorithm):
    gen = TaskSetGenerator(n=10, period_model="discrete")
    for seed in range(5):
        ts = gen.generate(u_norm=0.85, processors=3, seed=seed)
        a = algorithm(ts, 3)
        b = algorithm(ts, 3)
        assert partitions_equal(a, b), seed


def test_simulation_is_deterministic():
    ts = build_workload("robotics", u_norm=0.8, processors=2, seed=0)
    part = partition_rmts(ts, 2, dedicate_over_bound=False)
    assert part.success
    a = simulate_partition(part, horizon=500.0, record_trace=True,
                           collect_responses=True)
    b = simulate_partition(part, horizon=500.0, record_trace=True,
                           collect_responses=True)
    assert a.max_response == b.max_response
    assert a.response_samples == b.response_samples
    assert len(a.trace.intervals) == len(b.trace.intervals)


def test_pfair_is_deterministic():
    ts = build_workload("avionics", u_norm=0.7, processors=2, seed=0)
    a = simulate_pfair(ts, 2, horizon=200.0, quantum=0.5)
    b = simulate_pfair(ts, 2, horizon=200.0, quantum=0.5)
    assert a.jobs_completed == b.jobs_completed
    assert a.overhead_summary() == b.overhead_summary()


def test_experiment_tables_regenerate_exactly():
    from repro.experiments import get_experiment

    a = get_experiment("a2").run(quick=True, seed=11)
    b = get_experiment("a2").run(quick=True, seed=11)
    assert a.tables[0].rows == b.tables[0].rows
    assert a.checks == b.checks
