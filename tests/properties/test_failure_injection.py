"""Failure injection: every class of partition corruption must be caught.

``PartitionResult.validate`` is the safety net the rest of the repository
leans on (tests, experiments, CLI).  These tests corrupt known-good
partitions in targeted ways and assert the corresponding violation is
reported — so a silent weakening of the validator cannot slip through.
"""

import copy

import pytest

from repro.core.partition import PartitionResult, ProcessorState
from repro.core.rmts import partition_rmts
from repro.core.task import Subtask, SubtaskKind, Task, TaskSet


@pytest.fixture
def good_partition(tight_harmonic_set):
    part = partition_rmts(tight_harmonic_set, 2)
    assert part.success and part.validate() == []
    return part


def rebuild_subtask(sub, **overrides):
    fields = dict(
        cost=sub.cost,
        period=sub.period,
        deadline=sub.deadline,
        parent=sub.parent,
        index=sub.index,
        kind=sub.kind,
    )
    fields.update(overrides)
    return Subtask(**fields)


def find_split_pieces(part):
    tid = part.split_tids()[0]
    locs = []
    for proc in part.processors:
        for i, sub in enumerate(proc.subtasks):
            if sub.parent.tid == tid:
                locs.append((proc, i, sub))
    return sorted(locs, key=lambda x: x[2].index)


class TestCostCorruption:
    def test_inflated_piece_cost_detected(self, good_partition):
        locs = find_split_pieces(good_partition)
        proc, i, sub = locs[0]
        proc.subtasks[i] = rebuild_subtask(sub, cost=sub.cost + 0.5)
        errors = good_partition.validate()
        assert any("inconsistent" in e for e in errors)

    def test_deflated_piece_cost_detected(self, good_partition):
        locs = find_split_pieces(good_partition)
        proc, i, sub = locs[-1]
        proc.subtasks[i] = rebuild_subtask(sub, cost=sub.cost * 0.5)
        errors = good_partition.validate()
        assert any("inconsistent" in e for e in errors)


class TestDeadlineCorruption:
    def test_wrong_tail_deadline_detected(self, good_partition):
        locs = find_split_pieces(good_partition)
        proc, i, sub = locs[-1]
        assert sub.kind is SubtaskKind.TAIL
        proc.subtasks[i] = rebuild_subtask(sub, deadline=sub.period)
        errors = good_partition.validate()
        assert any("inconsistent" in e for e in errors)


class TestPlacementCorruption:
    def test_dropped_task_detected(self, good_partition):
        victim = None
        for proc in good_partition.processors:
            for sub in proc.subtasks:
                if sub.kind is SubtaskKind.WHOLE:
                    victim = (proc, sub)
        proc, sub = victim
        proc.subtasks.remove(sub)
        errors = good_partition.validate()
        assert any("unassigned" in e for e in errors)

    def test_duplicate_piece_on_processor_detected(self, good_partition):
        locs = find_split_pieces(good_partition)
        proc_a, _, sub_a = locs[0]
        proc_b, _, sub_b = locs[1]
        # move the second piece onto the first piece's processor
        proc_b.subtasks.remove(sub_b)
        proc_a.subtasks.append(sub_b)
        errors = good_partition.validate()
        assert any("multiple pieces" in e for e in errors)


class TestScheduleCorruption:
    def test_overloaded_processor_detected(self, good_partition):
        proc = good_partition.processors[0]
        intruder = Task(cost=3.0, period=4.0, tid=999)
        proc.subtasks.append(Subtask.whole(intruder))
        errors = good_partition.validate()
        assert any("RTA" in e for e in errors)

    def test_body_priority_violation_detected(self):
        # hand-build: a body subtask sharing a processor with a
        # higher-priority whole task
        ts = TaskSet.from_pairs([(1, 4), (6, 12)])
        hi, lo = ts[0], ts[1]
        p0 = ProcessorState(index=0)
        p0.add(Subtask.whole(hi))
        p0.add(Subtask(cost=2, period=12, deadline=12, parent=lo,
                       index=1, kind=SubtaskKind.BODY))
        p1 = ProcessorState(index=1)
        p1.add(Subtask(cost=4, period=12, deadline=10, parent=lo,
                       index=2, kind=SubtaskKind.TAIL))
        part = PartitionResult(
            algorithm="corrupt", taskset=ts, processors=[p0, p1],
            success=True,
        )
        errors = part.validate()
        assert any("highest-priority" in e for e in errors)


class TestSuccessFlagIntegrity:
    def test_false_success_with_unassigned_detected(self, tight_harmonic_set):
        part = partition_rmts(tight_harmonic_set, 2)
        # claim success while secretly dropping a whole task
        victim_proc = None
        for proc in part.processors:
            for sub in list(proc.subtasks):
                if sub.kind is SubtaskKind.WHOLE:
                    proc.subtasks.remove(sub)
                    victim_proc = proc
                    break
            if victim_proc:
                break
        assert part.success
        assert part.validate()  # not silent
