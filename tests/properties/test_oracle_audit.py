"""Differential audits: every analytical test vs the simulation oracle.

These are the repository's strongest correctness guarantees: on hundreds
of random integer task sets, the exact analyses must agree with a
hyperperiod simulation *bit for bit*, and the sufficient tests must never
be unsafe.
"""

import numpy as np
import pytest

from repro.analysis.oracle import (
    differential_audit,
    oracle_schedulable,
    random_integer_taskset,
)
from repro.core.baselines.edf import edf_schedulable
from repro.core.rta import (
    hyperbolic_bound_holds,
    is_schedulable,
    liu_layland_test_holds,
)
from repro.core.task import Subtask, TaskSet


def rta_test(ts):
    return is_schedulable([Subtask.whole(t) for t in ts])


def edf_test(ts):
    return edf_schedulable([Subtask.whole(t) for t in ts])


class TestOracle:
    def test_schedulable_example(self):
        ts = TaskSet.from_pairs([(2, 4), (2, 8), (4, 16)])
        assert oracle_schedulable(ts) is True

    def test_unschedulable_example(self):
        ts = TaskSet.from_pairs([(3, 4), (3, 8)])
        assert oracle_schedulable(ts) is False

    def test_overload_short_circuits(self):
        ts = TaskSet.from_pairs([(4, 4), (1, 8)])
        assert oracle_schedulable(ts) is False

    def test_non_integer_returns_none(self):
        ts = TaskSet.from_pairs([(1, 3.3)])
        assert oracle_schedulable(ts) is None

    def test_random_generator_respects_budget(self, rng):
        for _ in range(50):
            ts = random_integer_taskset(rng)
            assert ts.total_utilization <= 1.0 + 1e-9


class TestExactAnalysesAgreeWithOracle:
    def test_rta_is_exact(self):
        """Exact RTA == ground truth on every decidable random set."""
        audit = differential_audit(rta_test, trials=300, seed=1)
        assert audit.decided > 200
        assert audit.clean, [ts.to_dicts() for ts in audit.disagreements[:2]]

    def test_edf_dbf_is_exact(self):
        """The DBF test == ground truth under EDF dispatching."""
        audit = differential_audit(
            edf_test, trials=300, seed=2, scheduler="edf"
        )
        assert audit.decided > 200
        assert audit.clean, [ts.to_dicts() for ts in audit.disagreements[:2]]


class TestSufficientTestsAreSafe:
    def test_ll_test_never_unsafe(self):
        audit = differential_audit(
            lambda ts: liu_layland_test_holds([Subtask.whole(t) for t in ts]),
            trials=300,
            seed=3,
            analysis_is_exact=False,
        )
        assert audit.clean

    def test_hyperbolic_never_unsafe(self):
        audit = differential_audit(
            lambda ts: hyperbolic_bound_holds([Subtask.whole(t) for t in ts]),
            trials=300,
            seed=4,
            analysis_is_exact=False,
        )
        assert audit.clean

    def test_deliberately_broken_test_is_caught(self):
        """The audit harness itself must detect unsafe tests."""
        audit = differential_audit(
            lambda ts: True,  # accepts everything
            trials=300,
            seed=5,
            analysis_is_exact=False,
        )
        assert not audit.clean
