"""Stress tests of the paper's main theorems across platform sizes.

Theorem 8 (RM-TS/light) and the RM-TS bound (Section V) are exercised at
their exact boundary utilizations on random task sets of every flavour the
bounds cover.  Any failure here is a counterexample to the reproduction's
correctness (or — more interestingly — to the theorem).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bounds import (
    HarmonicChainBound,
    LiuLaylandBound,
    ll_bound,
    rmts_bound_cap,
)
from repro.core.rmts import partition_rmts
from repro.core.rmts_light import is_light_task_set, partition_rmts_light
from repro.sim.engine import simulate_partition
from repro.taskgen.generators import TaskSetGenerator


class TestTheorem8AcrossPlatforms:
    @pytest.mark.parametrize("m", [2, 3, 4, 6])
    def test_light_harmonic_full_utilization(self, m):
        n = 4 * m
        gen = TaskSetGenerator(n=n, period_model="harmonic", tmin=8.0).light()
        for seed in range(10):
            ts = gen.generate(u_norm=1.0, processors=m, seed=seed)
            assert is_light_task_set(ts)
            result = partition_rmts_light(ts, m)
            assert result.success, f"M={m} seed={seed}"

    @pytest.mark.parametrize("m", [2, 4])
    def test_light_general_at_ll_bound(self, m):
        n = 4 * m
        gen = TaskSetGenerator(n=n, period_model="loguniform").light()
        for seed in range(10):
            ts = gen.generate(u_norm=ll_bound(n), processors=m, seed=seed)
            assert partition_rmts_light(ts, m).success, f"M={m} seed={seed}"


class TestRMTSBoundAcrossPlatforms:
    @pytest.mark.parametrize("m", [2, 3, 4])
    def test_general_at_capped_ll(self, m):
        n = 3 * m
        lam = min(ll_bound(n), rmts_bound_cap(n))
        gen = TaskSetGenerator(n=n, period_model="loguniform")
        for seed in range(10):
            ts = gen.generate(u_norm=lam, processors=m, seed=seed)
            assert partition_rmts(ts, m, bound=LiuLaylandBound()).success, (
                f"M={m} seed={seed}"
            )

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_kchain_at_capped_hc_bound(self, k):
        m, n = 3, 12
        lam = min(ll_bound(k), rmts_bound_cap(n))
        gen = TaskSetGenerator(n=n, period_model="kchain", k=k).with_cap(0.9)
        for seed in range(10):
            ts = gen.generate(u_norm=lam, processors=m, seed=seed)
            assert partition_rmts(ts, m, bound=HarmonicChainBound()).success, (
                f"K={k} seed={seed}"
            )


class TestLemma4EndToEnd:
    """Partition acceptance (any algorithm) => no deadline miss in
    simulation, on every flavour of workload."""

    @given(st.integers(0, 30_000))
    @settings(max_examples=20, deadline=None)
    def test_accepted_implies_simulates_clean(self, seed):
        rng = np.random.default_rng(seed)
        m = int(rng.integers(2, 4))
        model = ["discrete", "harmonic"][int(rng.integers(0, 2))]
        gen = TaskSetGenerator(n=2 * m + 2, period_model=model, tmin=8.0)
        u = float(rng.uniform(0.6, 0.95))
        ts = gen.generate(u_norm=u, processors=m, seed=rng)
        algo = [partition_rmts, partition_rmts_light][int(rng.integers(0, 2))]
        part = algo(ts, m)
        if not part.success:
            return
        assert part.validate() == []
        sim = simulate_partition(part)
        assert sim.ok, f"miss: {sim.misses[:3]}"


class TestBoundTightnessWitnesses:
    def test_spa1_cannot_do_what_rmts_light_does(self):
        """A concrete set above Theta(N) that RM-TS/light takes and the
        threshold baseline provably cannot."""
        from repro.core.baselines.spa import partition_spa1

        gen = TaskSetGenerator(n=8, period_model="harmonic", tmin=8.0).light()
        ts = gen.generate(u_norm=0.95, processors=2, seed=0)
        assert partition_rmts_light(ts, 2).success
        assert not partition_spa1(ts, 2).success

    def test_partitioned_rm_without_splitting_loses_on_fat_tasks(self):
        """M+1 tasks of utilization just above 1/2 defeat any non-splitting
        partitioning on M processors but not the splitting algorithms."""
        from repro.core.baselines.partitioned import partition_no_split
        from repro.core.task import TaskSet

        m = 2
        ts = TaskSet.from_pairs([(5.2, 10), (5.2, 10), (5.2, 10)])
        assert not partition_no_split(ts, m, admission="rta").success
        result = partition_rmts(ts, m, dedicate_over_bound=False)
        assert result.success
        assert result.split_tids()
