"""Equivalence tests for the parallel sweep runner.

The contract: any sweep result is a pure function of its seed — worker
count, chunking and execution order must be unobservable.  These tests
pin that down for E3/E4-shaped configurations (scaled down so they run in
tier-1 time) and for the runner primitives themselves.
"""

from __future__ import annotations

import pytest

from repro.analysis.acceptance import acceptance_sweep
from repro.analysis.algorithms import (
    rmts_light_test,
    rmts_test,
    standard_algorithms,
)
from repro.analysis.breakdown import average_breakdown
from repro.core.baselines.spa import partition_spa1
from repro.perf.telemetry import COUNTERS
from repro.runner import cell_rng, chunked_map, resolve_jobs
from repro.taskgen.generators import TaskSetGenerator


def _square(payload, item):
    return payload * item * item


class TestRunnerPrimitives:
    def test_cell_rng_deterministic_and_independent(self):
        a1 = cell_rng(42, 3, 7).random(4)
        a2 = cell_rng(42, 3, 7).random(4)
        b = cell_rng(42, 7, 3).random(4)
        c = cell_rng(43, 3, 7).random(4)
        assert (a1 == a2).all()
        assert not (a1 == b).all()
        assert not (a1 == c).all()

    def test_chunked_map_preserves_order(self):
        items = list(range(23))
        expected = [_square(2, i) for i in items]
        assert chunked_map(_square, items, payload=2, jobs=1) == expected
        assert (
            chunked_map(_square, items, payload=2, jobs=2, chunksize=3)
            == expected
        )

    def test_chunked_map_accepts_closures_in_payload(self):
        # Closures cannot be pickled; they must reach workers by fork
        # inheritance.  This is exactly how acceptance tests travel.
        bound = 10
        fn = lambda x: x + bound  # noqa: E731
        out = chunked_map(_call_payload, [1, 2, 3], payload=fn, jobs=2)
        assert out == [11, 12, 13]

    def test_resolve_jobs(self):
        assert resolve_jobs(3) == 3
        assert resolve_jobs(None) >= 1
        assert resolve_jobs(0) >= 1
        with pytest.raises(ValueError):
            resolve_jobs(-1)

    def test_counter_deltas_merge_to_serial_totals(self):
        gen = TaskSetGenerator(n=8, period_model="loguniform")
        algorithms = {"RM-TS": rmts_test(None)}

        def run(jobs):
            before = COUNTERS.snapshot()
            acceptance_sweep(
                algorithms,
                gen,
                processors=2,
                u_grid=[0.7, 0.9],
                samples=4,
                seed=5,
                jobs=jobs,
            )
            return COUNTERS.delta_since(before)

        serial = run(1)
        parallel = run(2)
        assert serial["rta_calls"] > 0
        assert parallel == serial


def _call_payload(payload, item):
    return payload(item)


class TestSweepEquivalence:
    def test_e3_shaped_bit_identical(self):
        """General sets, full standard menu + RM-TS* (E3 shape, scaled)."""
        gen = TaskSetGenerator(n=12, period_model="loguniform")
        algorithms = standard_algorithms()
        algorithms["RM-TS*"] = rmts_test(None, dedicate_over_bound=False)
        kwargs = dict(
            processors=4,
            u_grid=[0.65, 0.8, 0.92],
            samples=6,
            seed=0,
        )
        serial = acceptance_sweep(algorithms, gen, jobs=1, **kwargs)
        parallel = acceptance_sweep(algorithms, gen, jobs=3, **kwargs)
        assert serial.curves == parallel.curves
        assert serial.u_grid == parallel.u_grid
        assert serial.samples == parallel.samples
        assert serial.processors == parallel.processors

    def test_e4_shaped_bit_identical(self):
        """Light sets, RM-TS/light vs SPA1 (E4 shape, scaled)."""
        gen = TaskSetGenerator(n=16, period_model="loguniform").light()
        algorithms = {
            "RM-TS/light": rmts_light_test(),
            "SPA1": lambda ts, m: partition_spa1(ts, m).success,
        }
        kwargs = dict(
            processors=4,
            u_grid=[0.7, 0.85],
            samples=6,
            seed=2,
        )
        serial = acceptance_sweep(algorithms, gen, jobs=1, **kwargs)
        parallel = acceptance_sweep(algorithms, gen, jobs=2, **kwargs)
        assert serial.curves == parallel.curves

    def test_breakdown_bit_identical(self):
        gen = TaskSetGenerator(n=10, period_model="loguniform")
        kwargs = dict(processors=2, samples=6, seed=1, tolerance=5e-3)
        serial = average_breakdown(rmts_test(None), gen, jobs=1, **kwargs)
        parallel = average_breakdown(rmts_test(None), gen, jobs=2, **kwargs)
        assert serial.values == parallel.values


@pytest.mark.perf_smoke
def test_perf_smoke_tiny_parallel_sweep():
    """Pool plumbing canary: 2 levels x 4 samples on 2 workers.

    Small enough for tier-1, real enough to catch a broken executor,
    chunker, or counter merge (the parallel result must match serial and
    actually exercise the RTA counters).
    """
    gen = TaskSetGenerator(n=8, period_model="loguniform")
    algorithms = standard_algorithms()
    before = COUNTERS.snapshot()
    parallel = acceptance_sweep(
        algorithms,
        gen,
        processors=2,
        u_grid=[0.7, 0.9],
        samples=4,
        seed=0,
        jobs=2,
    )
    delta = COUNTERS.delta_since(before)
    serial = acceptance_sweep(
        algorithms,
        gen,
        processors=2,
        u_grid=[0.7, 0.9],
        samples=4,
        seed=0,
        jobs=1,
    )
    assert parallel.curves == serial.curves
    assert delta["rta_calls"] > 0, "worker counter deltas were not merged"
