"""Adversarial-search tests: CE convergence, journaling, witness replay."""

import pytest

from repro.analysis.algorithms import PARTITIONERS
from repro.core.task import TaskSet
from repro.search.adversarial import (
    MARGIN,
    U_REJECT,
    AdversarialConfig,
    adversarial_search,
)
from repro.search.probes import SearchInterrupted
from repro.search.witness import (
    load_witness,
    replay_witness,
    save_witness,
    witness_record,
)
from repro.store.backend import ResultStore
from repro.taskgen.generators import TaskSetGenerator

pytestmark = pytest.mark.search


@pytest.fixture(scope="module")
def quick_config() -> AdversarialConfig:
    return AdversarialConfig(
        algorithm="rmts",
        generator=TaskSetGenerator(n=12),
        processors=4,
        seed=0,
        rounds=2,
        population=6,
        tolerance=5e-3,
    )


@pytest.fixture(scope="module")
def quick_result(quick_config):
    return adversarial_search(quick_config)


class TestAdversarialSearch:
    def test_finds_verified_rejection_above_cap(self, quick_result):
        assert quick_result.found
        best = quick_result.best
        assert best[MARGIN] > 0.0
        cap = quick_result.as_dict()["best"]["cap"]
        assert best[U_REJECT] > cap

    def test_history_tracks_every_round(self, quick_config, quick_result):
        assert len(quick_result.history) == quick_config.rounds
        assert quick_result.candidates_computed == (
            quick_config.rounds * quick_config.population
        )
        for entry in quick_result.history:
            assert entry["best_margin"] <= entry["mean_margin"]

    def test_jobs_invariance(self, quick_config, quick_result):
        parallel = adversarial_search(quick_config, jobs=2)
        assert parallel.as_dict() == quick_result.as_dict()

    def test_journal_resume_is_identical(
        self, quick_config, quick_result, tmp_path
    ):
        store = ResultStore(str(tmp_path / "adv.db"))
        try:
            cutoff = quick_result.candidates_computed // 2
            with pytest.raises(SearchInterrupted):
                adversarial_search(
                    quick_config, store=store, max_new_candidates=cutoff
                )
            resumed = adversarial_search(quick_config, store=store)
        finally:
            store.close()
        assert resumed.candidates_resumed == cutoff
        full_payload = quick_result.as_dict()
        resumed_payload = resumed.as_dict()
        for key in ("candidates_computed", "candidates_resumed"):
            full_payload.pop(key)
            resumed_payload.pop(key)
        assert resumed_payload == full_payload

    def test_extending_rounds_reuses_journal_prefix(
        self, quick_config, tmp_path
    ):
        from dataclasses import replace

        store = ResultStore(str(tmp_path / "extend.db"))
        try:
            short = adversarial_search(quick_config, store=store)
            longer = adversarial_search(
                replace(quick_config, rounds=3), store=store
            )
        finally:
            store.close()
        assert longer.candidates_resumed == short.candidates_computed
        assert longer.history[: quick_config.rounds] == short.history

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            AdversarialConfig(population=1)
        with pytest.raises(ValueError):
            AdversarialConfig(elite_frac=0.0)
        with pytest.raises(ValueError):
            AdversarialConfig(max_util_range=(1.0, 0.5))


class TestWitness:
    def test_record_embeds_replayable_coordinates(self, quick_result):
        record = witness_record(quick_result)
        assert record["kind"] == "adversarial_witness"
        assert record["u_norm"] > record["cap"]
        ts = TaskSet.from_dicts(record["tasks"])
        u_norm = ts.normalized_utilization(int(record["processors"]))
        assert u_norm == pytest.approx(record["u_norm"], rel=1e-9)

    def test_witness_set_is_actually_rejected(self, quick_result):
        record = witness_record(quick_result)
        ts = TaskSet.from_dicts(record["tasks"])
        partitioner = PARTITIONERS[record["algorithm"]]
        assert not partitioner(ts, int(record["processors"])).success

    def test_replay_confirms(self, quick_result):
        replay = replay_witness(witness_record(quick_result))
        assert replay["confirmed"]
        assert replay["tasks_match"]
        assert replay["rejected"]
        assert replay["counters_match"]
        assert replay["above_cap"]

    def test_replay_identical_across_jobs(self, quick_result):
        # Satellite contract: the witness replay reproduces identical
        # verdicts and analysis-cost counters at jobs=1 and jobs=2.
        record = witness_record(quick_result)
        serial = replay_witness(record, jobs=1)
        parallel = replay_witness(record, jobs=2)
        assert parallel == serial

    def test_save_and_load_round_trip(self, quick_result, tmp_path):
        path = str(tmp_path / "witness.json")
        record = save_witness(quick_result, path)
        loaded = load_witness(path)
        assert loaded["tasks"] == record["tasks"]
        assert loaded["u_norm"] == record["u_norm"]
        assert "provenance" in loaded  # stamped artifact
        assert replay_witness(loaded)["confirmed"]

    def test_load_rejects_non_witness_files(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"kind": "churn_bench"}')
        with pytest.raises(ValueError):
            load_witness(str(path))

    def test_record_requires_a_found_witness(self, quick_config):
        from repro.search.adversarial import AdversarialResult

        barren = AdversarialResult(
            config=quick_config,
            best=None,
            best_position=None,
            history=[],
            candidates_computed=0,
            candidates_resumed=0,
        )
        assert not barren.found
        with pytest.raises(ValueError):
            witness_record(barren)
