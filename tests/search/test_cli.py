"""CLI tests for ``python -m repro search`` (both dispatch paths)."""

import json

import pytest

from repro.cli import main as repro_main
from repro.search.cli import main as search_main

pytestmark = pytest.mark.search

QUICK_FRONTIER = [
    "frontier",
    "--u-min", "0.6",
    "--half-width", "0.05",
    "--batch", "10",
    "--max-samples", "40",
]

QUICK_ADVERSARIAL = [
    "adversarial",
    "--rounds", "2",
    "--population", "6",
    "--tolerance", "5e-3",
]


class TestFrontierCommand:
    def test_text_output(self, capsys):
        assert search_main(QUICK_FRONTIER) == 0
        out = capsys.readouterr().out
        assert "acceptance frontier" in out
        assert "grid-equivalent" in out

    def test_json_output(self, capsys):
        assert search_main(QUICK_FRONTIER + ["--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["algorithm"] == "rmts"
        assert payload["lo"] <= payload["u_star"] <= payload["hi"]
        assert payload["theory"]["rmts_cap"] == pytest.approx(
            0.832837281998265
        )

    def test_sharpness_flag(self, capsys):
        assert search_main(QUICK_FRONTIER + ["--sharpness", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["sharpness"]["transition_width"] > 0

    def test_dispatch_through_top_level_cli(self, capsys):
        # "search" is dispatched from argv[0] before argparse (the
        # REMAINDER caveat), so the top-level path must work too.
        assert repro_main(["search"] + QUICK_FRONTIER) == 0
        assert "acceptance frontier" in capsys.readouterr().out

    def test_store_resume_and_budget_exit_code(self, tmp_path, capsys):
        store = str(tmp_path / "cli.db")
        argv = QUICK_FRONTIER + ["--store", store]
        assert search_main(argv + ["--max-new-probes", "20"]) == 3
        assert "interrupted" in capsys.readouterr().err
        assert search_main(argv) == 0
        out = capsys.readouterr().out
        assert "(20 resumed)" in out

    def test_bad_algorithm_exits_two(self, capsys):
        assert search_main(["frontier", "--u-min", "2.0"]) == 2
        assert "error:" in capsys.readouterr().err


class TestAdversarialCommand:
    def test_writes_replayable_witness(self, tmp_path, capsys):
        witness = str(tmp_path / "witness.json")
        assert search_main(QUICK_ADVERSARIAL + ["--witness", witness]) == 0
        out = capsys.readouterr().out
        assert "witness: rejected at" in out
        assert search_main(["witness", witness]) == 0
        assert "confirmed: True" in capsys.readouterr().out

    def test_json_output(self, capsys):
        assert search_main(QUICK_ADVERSARIAL + ["--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["found"] is True
        assert payload["best"]["u_reject"] > payload["best"]["cap"]


class TestWitnessCommand:
    def test_json_verdict(self, tmp_path, capsys):
        witness = str(tmp_path / "witness.json")
        assert search_main(QUICK_ADVERSARIAL + ["--witness", witness]) == 0
        capsys.readouterr()
        assert search_main(["witness", witness, "--json", "-j", "2"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["confirmed"] is True

    def test_tampered_witness_fails(self, tmp_path, capsys):
        witness = tmp_path / "witness.json"
        assert search_main(
            QUICK_ADVERSARIAL + ["--witness", str(witness)]
        ) == 0
        capsys.readouterr()
        record = json.loads(witness.read_text())
        record["tasks"][0]["cost"] *= 0.5  # no longer the stored rejection
        witness.write_text(json.dumps(record))
        assert search_main(["witness", str(witness)]) == 1
        assert "confirmed: False" in capsys.readouterr().out

    def test_missing_file_exits_two(self, capsys):
        assert search_main(["witness", "nonesuch.json"]) == 2
        assert "error:" in capsys.readouterr().err
