"""The committed adversarial witness must keep replaying confirmed.

``benchmarks/results/witness_rmts.json`` is the acceptance-criteria
artifact: a journaled task set that RM-TS rejects at a normalized
utilization strictly above its proven ``2Theta/(1+Theta)`` cap.  This
suite replays it from its stored RNG coordinates, so any change to the
generator, the scaling rules, or the RM-TS analysis that would silently
invalidate the witness fails tier-1.
"""

from pathlib import Path

import pytest

from repro.analysis.algorithms import PARTITIONERS
from repro.core.bounds import rmts_bound_cap
from repro.core.task import TaskSet
from repro.search.witness import load_witness, replay_witness

pytestmark = pytest.mark.search

WITNESS = (
    Path(__file__).resolve().parents[2]
    / "benchmarks" / "results" / "witness_rmts.json"
)


@pytest.fixture(scope="module")
def record():
    if not WITNESS.is_file():
        pytest.skip("no committed witness_rmts.json")
    return load_witness(str(WITNESS))


def test_witness_sits_above_the_proven_cap(record):
    ts = TaskSet.from_dicts(record["tasks"])
    cap = rmts_bound_cap(len(ts))
    u_norm = ts.normalized_utilization(int(record["processors"]))
    assert u_norm > cap
    assert record["margin"] > 0.0
    assert record["cap"] == pytest.approx(cap, rel=1e-12)


def test_rmts_rejects_the_committed_witness(record):
    assert record["algorithm"] == "rmts"
    ts = TaskSet.from_dicts(record["tasks"])
    assert not PARTITIONERS["rmts"](ts, int(record["processors"])).success


def test_replay_from_rng_coordinates_confirms(record):
    replay = replay_witness(record)
    assert replay["confirmed"]
    assert replay["tasks_match"]
    assert replay["counters_match"]
    assert replay_witness(record, jobs=2) == replay
