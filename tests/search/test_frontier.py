"""Frontier-mapper tests: bisection, Wilson verdicts, jobs invariance."""

from dataclasses import replace

import pytest

from repro.search.config import SearchConfig, search_config_key
from repro.search.frontier import map_frontier
from repro.taskgen.generators import TaskSetGenerator

pytestmark = pytest.mark.search


def quick_config(**overrides) -> SearchConfig:
    base = dict(
        algorithm="rmts",
        generator=TaskSetGenerator(n=12),
        processors=4,
        seed=0,
        u_min=0.6,
        half_width=0.05,
        batch=10,
        max_samples_per_level=40,
    )
    base.update(overrides)
    return SearchConfig(**base)


class TestMapFrontier:
    def test_bracket_meets_target_half_width(self):
        result = map_frontier(quick_config())
        config = result.config
        assert config.u_min <= result.lo <= result.hi <= config.u_max
        assert result.interval_half_width <= config.half_width + 1e-12
        assert result.lo <= result.u_star <= result.hi

    def test_probe_accounting_matches_levels(self):
        result = map_frontier(quick_config())
        assert result.probes_total == sum(v.samples for v in result.levels)
        assert result.probes_resumed == 0
        assert result.probes_computed == result.probes_total

    def test_level_verdicts_are_confidence_backed(self):
        result = map_frontier(quick_config())
        config = result.config
        for verdict in result.levels:
            assert 0 < verdict.samples <= config.max_samples_per_level
            assert 0 <= verdict.accepted <= verdict.samples
            assert 0.0 <= verdict.ci_lo <= verdict.ci_hi <= 1.0
            if verdict.decided:
                # The Wilson interval excluded the target level.
                assert verdict.ci_lo > config.level or (
                    verdict.ci_hi < config.level
                )
                assert verdict.above == (verdict.ci_lo > config.level)

    def test_degenerate_range_below_frontier(self):
        # SPA2's frontier sits near Theta(12) ~= 0.714; the whole
        # [0.9, 1.0] range is rejected, so the bracket collapses low.
        result = map_frontier(
            quick_config(algorithm="spa2", u_min=0.9, u_max=1.0)
        )
        assert result.lo == result.hi == 0.9

    def test_degenerate_range_above_frontier(self):
        result = map_frontier(quick_config(u_min=0.55, u_max=0.65))
        assert result.lo == result.hi == 0.65

    def test_frontier_orders_algorithms(self):
        rmts = map_frontier(quick_config())
        spa2 = map_frontier(quick_config(algorithm="spa2"))
        assert rmts.u_star > spa2.u_star

    def test_grid_equivalent_and_efficiency(self):
        result = map_frontier(quick_config())
        config = result.config
        points = int(
            (config.u_max - config.u_min) / (2.0 * config.half_width)
        ) + 1
        assert result.grid_equivalent_calls == (
            points * config.max_samples_per_level
        )
        assert result.efficiency_vs_grid == pytest.approx(
            result.grid_equivalent_calls / result.probes_total
        )

    def test_jobs_invariance(self):
        serial = map_frontier(quick_config())
        parallel = map_frontier(quick_config(), jobs=2)
        assert parallel.as_dict() == serial.as_dict()

    def test_seed_changes_probes_not_contract(self):
        a = map_frontier(quick_config())
        b = map_frontier(quick_config(seed=1))
        assert a.as_dict() != b.as_dict()
        assert abs(a.u_star - b.u_star) < 0.2


class TestSearchConfig:
    def test_rejects_unknown_algorithm(self):
        with pytest.raises(ValueError):
            quick_config(algorithm="nonesuch")

    def test_rejects_inverted_range(self):
        with pytest.raises(ValueError):
            quick_config(u_min=0.9, u_max=0.8)

    def test_rejects_batch_above_cap(self):
        with pytest.raises(ValueError):
            quick_config(batch=50, max_samples_per_level=40)

    def test_namespace_keys_on_probe_identity_only(self):
        config = quick_config()
        # Search-policy fields do not change the probe values, so they
        # must not change the journal namespace (cross-search dedup).
        assert search_config_key(
            replace(config, level=0.9, half_width=0.01, batch=5)
        ) == search_config_key(config)
        # Probe-identity fields must.
        assert search_config_key(
            replace(config, seed=1)
        ) != search_config_key(config)
        assert search_config_key(
            replace(config, algorithm="spa2")
        ) != search_config_key(config)
