"""Probe-journal tests: resume identity, budgets, cross-search dedup."""

from dataclasses import replace

import pytest

from repro.search.config import SearchConfig, search_namespace
from repro.search.frontier import map_frontier, measure_sharpness
from repro.search.probes import ProbeJournal, SearchInterrupted, probe_key, u_key
from repro.store.backend import ResultStore
from repro.taskgen.generators import TaskSetGenerator

pytestmark = pytest.mark.search


@pytest.fixture
def config() -> SearchConfig:
    return SearchConfig(
        algorithm="rmts",
        generator=TaskSetGenerator(n=12),
        processors=4,
        seed=0,
        u_min=0.6,
        half_width=0.05,
        batch=10,
        max_samples_per_level=40,
    )


@pytest.fixture
def store(tmp_path):
    backend = ResultStore(str(tmp_path / "search.db"))
    yield backend
    backend.close()


class TestProbeKeys:
    def test_u_key_is_exact_bit_pattern(self):
        assert u_key(0.5) == u_key(0.5)
        assert u_key(0.1 + 0.2) != u_key(0.3)  # distinct doubles, distinct keys

    def test_probe_key_uses_float_hex(self):
        assert probe_key(0.75, 3) == "0x1.8000000000000p-1:3"


class TestResume:
    def test_journal_resumes_from_store(self, config, store):
        first = map_frontier(config, store=store)
        assert first.probes_resumed == 0
        second = map_frontier(config, store=store)
        assert second.probes_computed == 0
        assert second.probes_resumed == first.probes_total
        first_payload = first.as_dict()
        second_payload = second.as_dict()
        for key in ("probes_computed", "probes_resumed"):
            first_payload.pop(key)
            second_payload.pop(key)
        assert second_payload == first_payload

    def test_budget_kill_then_resume_is_byte_identical(self, config, store):
        full = map_frontier(config)
        cutoff = full.probes_computed // 2
        with pytest.raises(SearchInterrupted) as excinfo:
            map_frontier(config, store=store, max_new_probes=cutoff)
        assert excinfo.value.completed <= excinfo.value.total
        resumed = map_frontier(config, store=store)
        assert resumed.probes_resumed == cutoff
        full_payload = full.as_dict()
        resumed_payload = resumed.as_dict()
        for key in ("probes_computed", "probes_resumed"):
            full_payload.pop(key)
            resumed_payload.pop(key)
        assert resumed_payload == full_payload

    def test_zero_budget_interrupts_before_any_probe(self, config, store):
        with pytest.raises(SearchInterrupted):
            map_frontier(config, store=store, max_new_probes=0)
        assert store.get_namespace(search_namespace(config)) == {}

    def test_sharpness_scan_dedups_against_main_run(self, config, store):
        map_frontier(config, store=store)
        sharpness = measure_sharpness(config, store=store)
        # The 0.9/0.1-level bisections revisit already-journaled levels
        # (both endpoints at minimum), so some probes must be served
        # from the journal rather than recomputed.
        assert sharpness["probes_resumed"] > 0

    def test_journal_counts_survive_reopen(self, config, tmp_path):
        path = str(tmp_path / "reopen.db")
        backend = ResultStore(path)
        try:
            first = map_frontier(config, store=backend)
        finally:
            backend.close()
        backend = ResultStore(path)
        try:
            journal = ProbeJournal(backend, search_namespace(config))
            assert journal.journaled == first.probes_total
        finally:
            backend.close()


class TestInMemoryJournal:
    def test_memoizes_repeated_requests(self):
        journal = ProbeJournal()
        generator = TaskSetGenerator(n=4)

        def test(ts, m):
            return True

        payload = (test, generator, 2, 0)
        items = [(0.5, idx) for idx in range(4)]
        first = journal.evaluate(items, payload)
        again = journal.evaluate(items, payload)
        assert again == first
        assert journal.probes_computed == 4
        assert journal.probes_resumed == 4
