"""Shared helpers for service tests: in-loop server + raw HTTP client.

The endpoint tests run the real :class:`AdmissionServer` on an ephemeral
port inside a single ``asyncio.run`` per test, talking to it over actual
sockets with a minimal client — no HTTP library, same as production.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
from typing import Dict, Optional, Tuple

import pytest

from repro.service.handlers import ServiceConfig
from repro.service.server import AdmissionServer


async def http_request(
    port: int,
    method: str,
    path: str,
    body: Optional[object] = None,
    host: str = "127.0.0.1",
    raw: bool = False,
) -> Tuple[int, Dict[str, str], object]:
    """One-shot request; returns (status, headers, parsed JSON body).

    ``raw=True`` returns the body as decoded text instead of parsing it
    as JSON — for non-JSON responses like the Prometheus exposition.
    """
    reader, writer = await asyncio.open_connection(host, port)
    payload = b"" if body is None else json.dumps(body).encode()
    writer.write(
        (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {host}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode() + payload
    )
    await writer.drain()
    status = int((await reader.readline()).split()[1])
    headers: Dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode().partition(":")
        headers[name.strip().lower()] = value.strip()
    data = await reader.readexactly(int(headers.get("content-length", "0")))
    writer.close()
    with contextlib.suppress(Exception):
        await writer.wait_closed()
    if raw:
        return status, headers, data.decode("utf-8")
    return status, headers, json.loads(data) if data else None


@contextlib.asynccontextmanager
async def running_server(**config_kwargs):
    """Async context manager yielding a started server on a free port."""
    config_kwargs.setdefault("port", 0)
    server = AdmissionServer(ServiceConfig(**config_kwargs))
    await server.start()
    try:
        yield server
    finally:
        await server.stop(drain_timeout=5.0)


def run_async(coro):
    """Run a test coroutine to completion (no pytest-asyncio dependency)."""
    return asyncio.run(coro)


@pytest.fixture
def tasks_payload():
    """A schedulable 4-task harmonic set as raw request rows."""
    return [[1, 4], [2, 8], [6, 16], [8, 32]]
