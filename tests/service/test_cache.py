"""Canonical hashing and LRU behaviour of the service result cache."""

import pytest

from repro.core.task import TaskSet
from repro.service.cache import LRUCache, admit_cache_key

pytestmark = pytest.mark.service


class TestCacheKey:
    def test_deterministic(self):
        ts = TaskSet.from_pairs([(1, 4), (2, 8)])
        assert admit_cache_key(ts, 2, "rmts") == admit_cache_key(ts, 2, "rmts")

    def test_input_order_invariant_for_distinct_periods(self):
        a = TaskSet.from_pairs([(1, 4), (2, 8), (6, 16)])
        b = TaskSet.from_pairs([(6, 16), (1, 4), (2, 8)])
        assert admit_cache_key(a, 2, "rmts") == admit_cache_key(b, 2, "rmts")

    def test_processors_and_algorithm_separate(self):
        ts = TaskSet.from_pairs([(1, 4), (2, 8)])
        keys = {
            admit_cache_key(ts, 2, "rmts"),
            admit_cache_key(ts, 3, "rmts"),
            admit_cache_key(ts, 2, "spa2"),
            admit_cache_key(ts, 2, "rmts", kind="bounds"),
        }
        assert len(keys) == 4

    def test_parameters_matter(self):
        a = TaskSet.from_pairs([(1, 4), (2, 8)])
        b = TaskSet.from_pairs([(1, 4), (3, 8)])
        assert admit_cache_key(a, 2, "rmts") != admit_cache_key(b, 2, "rmts")

    def test_names_matter(self):
        # Names appear in the serialized partition body, so differently
        # named but numerically equal sets must not share a cached body.
        from repro.core.task import Task

        a = TaskSet([Task(cost=1, period=4, name="alpha")])
        b = TaskSet([Task(cost=1, period=4, name="beta")])
        assert admit_cache_key(a, 2, "rmts") != admit_cache_key(b, 2, "rmts")

    def test_default_names_do_not_pollute_key(self):
        # TaskSet auto-names tasks tau0, tau1, ...; those defaults must
        # hash like anonymous tasks so pair-style payloads still hit.
        a = TaskSet.from_pairs([(1, 4)])
        from repro.core.task import Task

        b = TaskSet([Task(cost=1, period=4)])
        assert admit_cache_key(a, 2, "rmts") == admit_cache_key(b, 2, "rmts")


class TestLRUCache:
    def test_hit_miss_accounting(self):
        cache = LRUCache(capacity=4)
        found, _ = cache.get("k")
        assert not found
        cache.put("k", {"x": 1})
        found, value = cache.get("k")
        assert found and value == {"x": 1}
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == pytest.approx(0.5)

    def test_eviction_is_lru(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")          # refresh a; b is now least recent
        cache.put("c", 3)
        assert cache.get("a")[0]
        assert not cache.get("b")[0]
        assert cache.get("c")[0]
        assert cache.evictions == 1

    def test_zero_capacity_disables(self):
        cache = LRUCache(capacity=0)
        cache.put("a", 1)
        assert len(cache) == 0
        assert not cache.get("a")[0]

    def test_stats_shape(self):
        stats = LRUCache(capacity=8).stats()
        assert set(stats) == {
            "size", "capacity", "hits", "misses", "evictions", "hit_rate"
        }

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(capacity=-1)
