"""HTTP surface of cluster mode: stateful admit, depart, snapshot."""

import pytest

from tests.service.conftest import http_request, run_async, running_server

pytestmark = [pytest.mark.service, pytest.mark.churn]

CLUSTER_KWARGS = dict(
    cluster=True,
    cluster_policy="bf-rejoin",
    cluster_processors=2,
    cluster_k=2,
    cluster_queue_limit=2,
    cluster_max_wait=300.0,
)


def _set(u=0.3, n=3, period=50.0):
    cost = u * period / n
    return {"tasks": [[cost, period] for _ in range(n)]}


class TestClusterAdmit:
    def test_admit_mutates_live_state(self):
        async def scenario():
            async with running_server(**CLUSTER_KWARGS) as server:
                port = server.port
                first = await http_request(
                    port, "POST", "/v1/admit", _set(u=0.3)
                )
                second = await http_request(
                    port, "POST", "/v1/admit", _set(u=0.3)
                )
                snap = await http_request(port, "GET", "/v1/cluster")
                return first, second, snap

        (s1, _, b1), (s2, _, b2), (s3, _, snap) = run_async(scenario())
        assert (s1, s2, s3) == (200, 200, 200)
        assert b1["status"] == "admitted" and b1["tenant"] == 0
        assert b2["tenant"] == 1
        assert b2["utilization"] > b1["utilization"]
        assert snap["policy"] == "bf-rejoin"
        assert 0 in snap["residents"]

    def test_overload_queues_then_rejects(self):
        async def scenario():
            async with running_server(**CLUSTER_KWARGS) as server:
                out = []
                for _ in range(6):
                    _, _, body = await http_request(
                        server.port, "POST", "/v1/admit", _set(u=0.8)
                    )
                    out.append(body["status"])
                return out

        statuses = run_async(scenario())
        assert statuses[0] == "admitted"
        assert "queued" in statuses and statuses[-1] == "rejected"

    def test_invalid_taskset_is_400(self):
        async def scenario():
            async with running_server(**CLUSTER_KWARGS) as server:
                return await http_request(
                    server.port, "POST", "/v1/admit",
                    {"tasks": [[1.0, "soon"]]},
                )

        status, _, body = run_async(scenario())
        assert status == 400
        assert body["error"] == "validation"
        assert body["details"][0]["field"] == "tasks[0].period"


class TestDepart:
    def test_depart_frees_capacity_and_readmits(self):
        async def scenario():
            async with running_server(**CLUSTER_KWARGS) as server:
                port = server.port
                _, _, big = await http_request(
                    port, "POST", "/v1/admit", _set(u=1.2, n=6)
                )
                _, _, queued = await http_request(
                    port, "POST", "/v1/admit", _set(u=0.9, n=4)
                )
                status, _, gone = await http_request(
                    port, "POST", "/v1/depart", {"tenant": big["tenant"]}
                )
                _, _, snap = await http_request(port, "GET", "/v1/cluster")
                return queued, status, gone, snap

        queued, status, gone, snap = run_async(scenario())
        assert queued["status"] == "queued"
        assert status == 200 and gone["status"] == "departed"
        assert [r["tenant"] for r in gone["readmitted"]] == [
            queued["tenant"]
        ]
        assert snap["residents"] == [queued["tenant"]]

    def test_unknown_tenant_is_404(self):
        async def scenario():
            async with running_server(**CLUSTER_KWARGS) as server:
                return await http_request(
                    server.port, "POST", "/v1/depart", {"tenant": 42}
                )

        status, _, body = run_async(scenario())
        assert status == 404
        assert body["status"] == "unknown"

    def test_non_integer_tenant_is_400(self):
        async def scenario():
            async with running_server(**CLUSTER_KWARGS) as server:
                results = []
                for tenant in ("zero", True, None):
                    results.append(await http_request(
                        server.port, "POST", "/v1/depart",
                        {"tenant": tenant},
                    ))
                return results

        for status, _, _ in run_async(scenario()):
            assert status == 400

    def test_wrong_method_is_405(self):
        async def scenario():
            async with running_server(**CLUSTER_KWARGS) as server:
                return await http_request(server.port, "GET", "/v1/depart")

        status, _, _ = run_async(scenario())
        assert status == 405


class TestModeGating:
    def test_cluster_routes_404_when_mode_off(self):
        async def scenario():
            async with running_server() as server:
                depart = await http_request(
                    server.port, "POST", "/v1/depart", {"tenant": 0}
                )
                snap = await http_request(server.port, "GET", "/v1/cluster")
                return depart, snap

        (s1, _, b1), (s2, _, b2) = run_async(scenario())
        assert s1 == 404 and s2 == 404
        assert b1["error"] == "cluster mode disabled"
        assert b2["error"] == "cluster mode disabled"

    def test_plain_admit_stays_stateless_when_mode_off(self, tasks_payload):
        async def scenario():
            async with running_server() as server:
                return await http_request(
                    server.port, "POST", "/v1/admit",
                    {"tasks": tasks_payload, "processors": 2},
                )

        status, _, body = run_async(scenario())
        assert status == 200
        assert "tenant" not in body
        assert body["admitted"] is True
