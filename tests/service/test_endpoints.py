"""End-to-end endpoint tests against a real server on an ephemeral port."""

import asyncio

import pytest

from repro.perf.telemetry import COUNTERS

from tests.service.conftest import http_request, run_async, running_server

pytestmark = pytest.mark.service


class TestAdmit:
    def test_happy_path_returns_partition(self, tasks_payload):
        async def scenario():
            async with running_server() as server:
                return await http_request(
                    server.port, "POST", "/v1/admit",
                    {"tasks": tasks_payload, "processors": 2},
                )

        status, headers, body = run_async(scenario())
        assert status == 200
        assert body["admitted"] is True
        assert body["degraded"] is False
        assert headers["x-repro-cache"] == "miss"
        part = body["partition"]
        assert part["format"] == "repro-partition-v1"
        assert len(part["processors"]) == 2
        assert body["unassigned_tids"] == []

    def test_rejection_lists_unassigned(self, tasks_payload):
        async def scenario():
            async with running_server() as server:
                return await http_request(
                    server.port, "POST", "/v1/admit",
                    {"tasks": tasks_payload, "processors": 1},
                )

        status, _, body = run_async(scenario())
        assert status == 200
        assert body["admitted"] is False
        assert body["partition"] is None
        assert body["unassigned_tids"]

    def test_cache_hit_returns_identical_body(self, tasks_payload):
        async def scenario():
            async with running_server() as server:
                payload = {"tasks": tasks_payload, "processors": 2}
                first = await http_request(
                    server.port, "POST", "/v1/admit", payload
                )
                second = await http_request(
                    server.port, "POST", "/v1/admit", payload
                )
                metrics = await http_request(server.port, "GET", "/metrics")
                return first, second, metrics

        (s1, h1, b1), (s2, h2, b2), (_, _, metrics) = run_async(scenario())
        assert (s1, s2) == (200, 200)
        assert h1["x-repro-cache"] == "miss"
        assert h2["x-repro-cache"] == "hit"
        assert b1 == b2
        assert metrics["cache"]["hits"] >= 1

    def test_validation_error_is_structured_400(self):
        async def scenario():
            async with running_server() as server:
                return await http_request(
                    server.port, "POST", "/v1/admit",
                    {"tasks": [[-1, 4]], "processors": 0},
                )

        status, _, body = run_async(scenario())
        assert status == 400
        assert body["error"] == "validation"
        fields = {d["field"] for d in body["details"]}
        assert "tasks[0].cost" in fields and "processors" in fields

    def test_malformed_json_is_400_not_500(self):
        async def scenario():
            async with running_server() as server:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                blob = b"{not json"
                writer.write(
                    (
                        "POST /v1/admit HTTP/1.1\r\n"
                        f"Content-Length: {len(blob)}\r\n"
                        "Connection: close\r\n\r\n"
                    ).encode() + blob
                )
                await writer.drain()
                status = int((await reader.readline()).split()[1])
                writer.close()
                return status

        assert run_async(scenario()) == 400

    def test_timeout_degrades_to_bound_verdict(self, tasks_payload):
        # inject_delay far beyond the analysis deadline forces the
        # degraded path: the response must be the utilization-bound
        # verdict (admitted for this low-utilization set), not an error.
        before = COUNTERS.svc_timeouts

        async def scenario():
            async with running_server(
                analysis_timeout=0.05, inject_delay=0.5
            ) as server:
                payload = {"tasks": tasks_payload, "processors": 2}
                first = await http_request(
                    server.port, "POST", "/v1/admit", payload
                )
                again = await http_request(
                    server.port, "POST", "/v1/admit", payload
                )
                return first, again

        (status, _, body), (_, h2, b2) = run_async(scenario())
        assert status == 200
        assert body["degraded"] is True
        assert body["decided_by"] == "utilization-bound"
        assert body["admitted"] is True          # U_M = 0.5625 <= bound
        assert body["partition"] is None
        # degraded bodies are never cached — the retry recomputes
        assert h2["x-repro-cache"] == "miss"
        assert b2["degraded"] is True
        assert COUNTERS.svc_timeouts >= before + 2


class TestBounds:
    def test_bounds_body(self, tasks_payload):
        async def scenario():
            async with running_server() as server:
                return await http_request(
                    server.port, "POST", "/v1/bounds",
                    {"tasks": tasks_payload, "processors": 2},
                )

        status, _, body = run_async(scenario())
        assert status == 200
        assert body["harmonic_chains"] == 1
        assert body["best_bound"] == pytest.approx(1.0)
        assert body["guaranteed_schedulable"] is True
        assert set(body["bounds"]) >= {"L&L", "HC"}

    def test_bounds_cached(self, tasks_payload):
        async def scenario():
            async with running_server() as server:
                payload = {"tasks": tasks_payload}
                await http_request(server.port, "POST", "/v1/bounds", payload)
                return await http_request(
                    server.port, "POST", "/v1/bounds", payload
                )

        _, headers, _ = run_async(scenario())
        assert headers["x-repro-cache"] == "hit"


class TestBatch:
    def test_mixed_batch(self, tasks_payload):
        async def scenario():
            async with running_server() as server:
                return await http_request(
                    server.port, "POST", "/v1/batch",
                    {
                        "processors": 2,
                        "items": [
                            {"tasks": tasks_payload},
                            {"tasks": [[-3, 4]]},
                            {"tasks": [[2, 4], [2, 4]], "processors": 1},
                        ],
                    },
                )

        status, _, body = run_async(scenario())
        assert status == 200
        assert body["count"] == 3
        assert [r["status"] for r in body["results"]] == [200, 400, 200]
        assert body["results"][0]["admitted"] is True
        assert body["results"][1]["error"] == "validation"
        assert body["degraded"] is False

    def test_batch_shares_cache_with_admit(self, tasks_payload):
        async def scenario():
            async with running_server() as server:
                await http_request(
                    server.port, "POST", "/v1/admit",
                    {"tasks": tasks_payload, "processors": 2},
                )
                hits_before = server.service.cache.hits
                await http_request(
                    server.port, "POST", "/v1/batch",
                    {"processors": 2, "items": [{"tasks": tasks_payload}]},
                )
                return hits_before, server.service.cache.hits

        hits_before, hits_after = run_async(scenario())
        assert hits_after == hits_before + 1

    def test_batch_envelope_validation(self):
        async def scenario():
            async with running_server() as server:
                return await http_request(
                    server.port, "POST", "/v1/batch", {"items": []}
                )

        status, _, body = run_async(scenario())
        assert status == 400
        assert body["error"] == "validation"


class TestBackpressure:
    def test_queue_limit_sheds_with_429(self, tasks_payload):
        async def scenario():
            async with running_server(
                queue_limit=1, inject_delay=0.3, analysis_timeout=5.0
            ) as server:
                payload = {"tasks": tasks_payload, "processors": 2}

                async def one():
                    return await http_request(
                        server.port, "POST", "/v1/admit", payload
                    )

                results = await asyncio.gather(*(one() for _ in range(4)))
                metrics = await http_request(server.port, "GET", "/metrics")
                return results, metrics

        results, (_, _, metrics) = run_async(scenario())
        statuses = sorted(r[0] for r in results)
        assert statuses.count(200) >= 1
        assert 429 in statuses
        rejected = [r for r in results if r[0] == 429]
        assert all(r[2]["error"] == "backpressure" for r in rejected)
        assert all("retry-after" in r[1] for r in rejected)
        assert metrics["backpressure_total"] >= 1

    def test_draining_returns_503(self, tasks_payload):
        async def scenario():
            async with running_server() as server:
                server.request_shutdown()
                return await http_request(
                    server.port, "POST", "/v1/admit",
                    {"tasks": tasks_payload, "processors": 2},
                )

        status, _, body = run_async(scenario())
        assert status == 503
        assert body["error"] == "draining"


class TestIntrospection:
    def test_healthz(self):
        async def scenario():
            async with running_server() as server:
                return await http_request(server.port, "GET", "/healthz")

        status, _, body = run_async(scenario())
        assert status == 200
        assert body["status"] == "ok"

    def test_metrics_shape(self, tasks_payload):
        async def scenario():
            async with running_server() as server:
                await http_request(
                    server.port, "POST", "/v1/admit",
                    {"tasks": tasks_payload, "processors": 2},
                )
                return await http_request(server.port, "GET", "/metrics")

        status, _, body = run_async(scenario())
        assert status == 200
        assert body["requests"]["total"] >= 1
        assert "POST /v1/admit" in body["requests"]["by_endpoint"]
        assert body["latency_ms"]["count"] >= 1
        assert body["latency_ms"]["p50"] <= body["latency_ms"]["p99"]
        assert body["cache"]["misses"] >= 1
        assert "rta_calls" in body["counters"]

    def test_unknown_route_404_wrong_method_405(self):
        async def scenario():
            async with running_server() as server:
                a = await http_request(server.port, "GET", "/nope")
                b = await http_request(server.port, "GET", "/v1/admit")
                return a[0], b[0]

        assert run_async(scenario()) == (404, 405)


class TestDrain:
    def test_shutdown_finishes_inflight_work(self, tasks_payload):
        # A request that is mid-analysis when shutdown is requested must
        # still complete; the listener closes afterwards.
        async def scenario():
            async with running_server(inject_delay=0.2) as server:
                task = asyncio.create_task(
                    http_request(
                        server.port, "POST", "/v1/admit",
                        {"tasks": tasks_payload, "processors": 2},
                    )
                )
                await asyncio.sleep(0.05)       # request is now in flight
                server.request_shutdown()
                status, _, body = await task
                return status, body

        status, body = run_async(scenario())
        assert status == 200
        assert body["admitted"] is True
