"""Regression tests for the R9 transitive-blocking fixes.

The flow analysis (R9) proved every async handler could reach the
store-backed cache's sqlite calls *on the event-loop thread* through
``TieredCache`` — admit/bounds cache probes, batch planning, and the
``/metrics`` stats read.  The fix routes every cache touch through
``AdmissionServer._offload`` (the worker pool).  These tests pin the
behaviour: they record the thread running each cache method while real
requests are in flight and assert it is never the loop thread.
"""

from __future__ import annotations

import inspect
import threading
from typing import List

import pytest

from repro.service.server import AdmissionServer

from tests.service.conftest import http_request, run_async, running_server

pytestmark = pytest.mark.service


def _spy_cache(server, calls: List[str]) -> None:
    """Wrap the live cache so each touch records its thread ident."""
    cache = server.service.cache
    loop_thread = threading.get_ident()  # called from inside the loop

    def record(name: str) -> None:
        where = "loop" if threading.get_ident() == loop_thread else "worker"
        calls.append(f"{name}:{where}")

    real_get, real_put, real_stats = cache.get, cache.put, cache.stats

    def spy_get(key):
        record("get")
        return real_get(key)

    def spy_put(key, value):
        record("put")
        return real_put(key, value)

    def spy_stats():
        record("stats")
        return real_stats()

    cache.get, cache.put, cache.stats = spy_get, spy_put, spy_stats


class TestCacheTouchesOffLoop:
    def test_admit_and_metrics_never_touch_cache_on_loop(
        self, tasks_payload
    ):
        calls: List[str] = []

        async def scenario():
            async with running_server() as server:
                _spy_cache(server, calls)
                payload = {"tasks": tasks_payload, "processors": 2}
                # miss (get + put), hit (get), then the stats read.
                await http_request(server.port, "POST", "/v1/admit", payload)
                await http_request(server.port, "POST", "/v1/admit", payload)
                await http_request(server.port, "GET", "/metrics")

        run_async(scenario())
        kinds = {c.split(":")[0] for c in calls}
        assert {"get", "put", "stats"} <= kinds, calls
        on_loop = [c for c in calls if c.endswith(":loop")]
        assert on_loop == [], f"cache touched on the event loop: {on_loop}"

    def test_bounds_cache_probe_runs_on_worker(self):
        calls: List[str] = []

        async def scenario():
            async with running_server() as server:
                _spy_cache(server, calls)
                await http_request(
                    server.port, "POST", "/v1/bounds",
                    {"tasks": [[1, 4], [2, 8]], "theta_max": 4},
                )

        run_async(scenario())
        assert any(c.startswith("get:") for c in calls), calls
        assert all(c.endswith(":worker") for c in calls), calls


class TestMetricsBodyIsolation:
    def test_metrics_body_requires_precomputed_stats(self):
        """The body builder must not be able to reach the cache itself.

        ``cache_stats`` has no default: the only way to build the metrics
        body is with stats fetched by the caller (via ``_offload``), so
        the R9 fix cannot silently regress to an inline fallback.
        """
        params = inspect.signature(
            AdmissionServer.metrics_body
        ).parameters
        assert "cache_stats" in params
        assert params["cache_stats"].default is inspect.Parameter.empty
