"""Loadgen workload construction tests + end-to-end serving smoke."""

import json

import pytest

from repro.service.loadgen import build_parser, build_payloads, run_loadgen

pytestmark = pytest.mark.service


class TestPayloads:
    def _args(self, **overrides):
        defaults = ["--requests", "10", "--distinct", "3"]
        args = build_parser().parse_args(defaults)
        for key, value in overrides.items():
            setattr(args, key, value)
        return args

    def test_distinct_sets_cycle(self):
        payloads = build_payloads(self._args())
        assert len(payloads) == 10
        # request i uses task set i % distinct -> exact repetition cycle
        assert payloads[0] == payloads[3] == payloads[6]
        assert payloads[0] != payloads[1]

    def test_payloads_are_valid_admit_bodies(self):
        from repro.service.validation import parse_admit_request

        for blob in build_payloads(self._args()):
            request = parse_admit_request(json.loads(blob))
            assert len(request.taskset) == 12

    def test_deterministic_across_runs(self):
        assert build_payloads(self._args()) == build_payloads(self._args())

    def test_batch_mode_wraps_items(self):
        args = self._args(endpoint="batch", batch_size=4)
        body = json.loads(build_payloads(args)[0])
        assert len(body["items"]) == 4
        assert body["algorithm"] == "rmts"


@pytest.mark.perf_smoke
class TestServingSmoke:
    def test_spawned_server_zero_5xx_and_cache_hits(self, tmp_path):
        out = tmp_path / "BENCH_service.json"
        args = build_parser().parse_args([
            "--spawn", "--port", "0",
            "--requests", "40", "--concurrency", "4",
            "--distinct", "5", "--n", "8",
            "--json", str(out),
        ])
        report = run_loadgen(args)
        client = report["client"]
        assert all(int(k) < 500 for k in client["status_counts"])
        assert client["status_counts"].get("200", 0) == 40
        # 40 requests over 5 distinct sets -> the cache must be hot
        assert client["cache_hit_responses"] >= 30
        assert report["server_metrics"]["cache"]["hits"] >= 30
        # SIGTERM drain exits cleanly
        assert report["server_exit_code"] == 0
        # report artifact written and loadable
        saved = json.loads(out.read_text())
        assert saved["kind"] == "service_loadgen"
