"""Service ↔ observability integration: /metrics exposition + spans."""

import pytest

from repro.obs import metrics, trace, use_observability
from tests.obs.test_prometheus import parse_exposition
from tests.service.conftest import http_request, run_async, running_server

pytestmark = [pytest.mark.service, pytest.mark.obs]


def test_metrics_default_stays_json(tasks_payload):
    async def scenario():
        async with running_server() as server:
            status, headers, body = await http_request(
                server.port, "GET", "/metrics"
            )
            assert status == 200
            assert headers["content-type"] == "application/json"
            assert "uptime_seconds" in body

    run_async(scenario())


def test_prometheus_exposition_is_parseable(tasks_payload):
    async def scenario():
        async with running_server() as server:
            # generate some traffic first so labeled series exist
            await http_request(
                server.port, "POST", "/v1/admit",
                {"tasks": tasks_payload, "processors": 2},
            )
            await http_request(server.port, "GET", "/healthz")
            status, headers, text = await http_request(
                server.port, "GET", "/metrics?format=prometheus", raw=True
            )
            assert status == 200
            assert headers["content-type"].startswith("text/plain")
            assert "version=0.0.4" in headers["content-type"]
            samples, types = parse_exposition(text)
            assert types["repro_events_total"] == "counter"
            assert types["repro_inflight"] == "gauge"
            endpoints = {
                labels["endpoint"]
                for name, labels, _ in samples
                if name == "repro_http_requests"
            }
            assert "POST /v1/admit" in endpoints
            assert "GET /healthz" in endpoints
            statuses = {
                labels["status"]
                for name, labels, _ in samples
                if name == "repro_http_responses"
            }
            assert "200" in statuses

    run_async(scenario())


def test_query_string_does_not_break_routing():
    async def scenario():
        async with running_server() as server:
            status, _, body = await http_request(
                server.port, "GET", "/healthz?probe=1"
            )
            assert status == 200 and body["status"] == "ok"
            status, _, body = await http_request(
                server.port, "GET", "/metrics?format=json"
            )
            assert status == 200 and "uptime_seconds" in body
            status, _, _ = await http_request(
                server.port, "GET", "/nope?x=1"
            )
            assert status == 404

    run_async(scenario())


def test_prometheus_histograms_fill_while_metrics_armed(tasks_payload):
    async def scenario():
        async with running_server() as server:
            await http_request(
                server.port, "POST", "/v1/admit",
                {"tasks": tasks_payload, "processors": 2},
            )
            _, _, text = await http_request(
                server.port, "GET", "/metrics?format=prometheus", raw=True
            )
            return text

    metrics.reset()
    with use_observability(True):
        text = run_async(scenario())
    samples, _ = parse_exposition(text)
    by_name = {name for name, _, _ in samples}
    assert "repro_http_request_seconds_count" in by_name
    counts = {
        name: value for name, labels, value in samples
        if name.endswith("_count")
    }
    assert int(counts["repro_http_request_seconds_count"]) >= 1
    assert int(counts["repro_admit_latency_seconds_count"]) >= 1
    metrics.reset()


def test_request_spans_parent_the_executor_analysis(tasks_payload):
    async def scenario():
        async with running_server(cache_size=0) as server:
            await http_request(
                server.port, "POST", "/v1/admit",
                {"tasks": tasks_payload, "processors": 2},
            )

    trace.drain()
    with use_observability(True):
        run_async(scenario())
    spans = trace.drain()
    by_name = {}
    for record in spans:
        by_name.setdefault(record["name"], []).append(record)
    (request_span,) = [
        r for r in by_name["svc.request"]
        if r["attrs"]["endpoint"] == "POST /v1/admit"
    ]
    assert request_span["attrs"]["status"] == 200
    (admit_span,) = by_name["svc.compute_admit"]
    # run_in_executor does not propagate contextvars; the server re-enters
    # the captured context, so the analysis span joins the request's trace
    assert admit_span["trace"] == request_span["trace"]
    assert admit_span["parent"] == request_span["span"]
    assert admit_span["attrs"]["algorithm"] == "rmts"
