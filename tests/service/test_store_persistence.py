"""Service + store integration: the cache survives a server restart."""

import pytest

from tests.service.conftest import http_request, run_async, running_server

pytestmark = [pytest.mark.service, pytest.mark.store]


class TestRestartPersistence:
    def test_restarted_server_serves_cached_results(
        self, tasks_payload, tmp_path
    ):
        store_path = str(tmp_path / "service.db")
        payload = {"tasks": tasks_payload, "processors": 2}

        async def first_life():
            async with running_server(store_path=store_path) as server:
                return await http_request(
                    server.port, "POST", "/v1/admit", payload
                )

        async def second_life():
            async with running_server(store_path=store_path) as server:
                response = await http_request(
                    server.port, "POST", "/v1/admit", payload
                )
                metrics = await http_request(server.port, "GET", "/metrics")
                return response, metrics

        status1, headers1, body1 = run_async(first_life())
        (status2, headers2, body2), (_, _, metrics) = run_async(second_life())

        assert (status1, status2) == (200, 200)
        assert headers1["x-repro-cache"] == "miss"  # cold: computed
        assert headers2["x-repro-cache"] == "hit"   # warm across restart
        assert body2 == body1                       # same bytes, no recompute
        # the hit was answered by the durable tier of the fresh process
        assert metrics["cache"]["tiers"]["store"]["hits"] == 1

    def test_metrics_expose_tier_breakdown(self, tasks_payload, tmp_path):
        store_path = str(tmp_path / "service.db")

        async def scenario():
            async with running_server(store_path=store_path) as server:
                await http_request(
                    server.port, "POST", "/v1/admit",
                    {"tasks": tasks_payload, "processors": 2},
                )
                return await http_request(server.port, "GET", "/metrics")

        _, _, metrics = run_async(scenario())
        tiers = metrics["cache"]["tiers"]
        assert tiers["store"]["entries"] == 1
        assert tiers["memory"]["size"] == 1

    def test_without_store_flag_nothing_persists(self, tasks_payload):
        # control: the plain LRU configuration stays cold across restarts
        payload = {"tasks": tasks_payload, "processors": 2}

        async def one_life():
            async with running_server() as server:
                return await http_request(
                    server.port, "POST", "/v1/admit", payload
                )

        _, h1, _ = run_async(one_life())
        _, h2, _ = run_async(one_life())
        assert h1["x-repro-cache"] == "miss"
        assert h2["x-repro-cache"] == "miss"
