"""Structured request validation: every malformed field, no tracebacks."""

import math

import pytest

from repro._util.validation import as_finite_float, as_int
from repro.service.validation import (
    MAX_TASKS,
    RequestValidationError,
    parse_admit_request,
    parse_taskset_payload,
)

pytestmark = pytest.mark.service


class TestCoercions:
    def test_finite_float_accepts_numbers(self):
        assert as_finite_float("x", 3) == 3.0
        assert as_finite_float("x", 2.5) == 2.5

    @pytest.mark.parametrize("bad", [True, False, None, "abc", [], {},
                                     float("nan"), float("inf")])
    def test_finite_float_rejects(self, bad):
        with pytest.raises(ValueError, match="x must be"):
            as_finite_float("x", bad)

    def test_int_accepts_integral_float(self):
        assert as_int("m", 4.0) == 4

    @pytest.mark.parametrize("bad", [True, 4.5, "4", None])
    def test_int_rejects(self, bad):
        with pytest.raises(ValueError, match="m must be"):
            as_int("m", bad)

    def test_int_range(self):
        with pytest.raises(ValueError, match=">= 1"):
            as_int("m", 0, low=1)


class TestTasksetPayload:
    def test_pairs_and_dicts(self):
        ts = parse_taskset_payload([[1, 4], {"cost": 2, "period": 8, "name": "b"}])
        assert len(ts) == 2
        assert ts.total_utilization == pytest.approx(0.5)

    @pytest.mark.parametrize("rows,field", [
        ([[-1, 4]], "tasks[0].cost"),              # negative cost
        ([[0, 4]], "tasks[0].cost"),               # zero cost
        ([[5, 4]], "tasks[0]"),                    # cost > period
        ([[1, -4]], "tasks[0].period"),            # negative period
        ([[1, "x"]], "tasks[0].period"),           # non-numeric
        ([{"cost": True, "period": 4}], "tasks[0].cost"),   # boolean
        ([{"period": 4}], "tasks[0].cost"),        # missing field
        ([[1, 2, 3]], "tasks[0]"),                 # wrong arity
        ("nope", "tasks"),                         # not a list
        ([], "tasks"),                             # empty
    ])
    def test_rejections_name_the_field(self, rows, field):
        with pytest.raises(RequestValidationError) as exc_info:
            parse_taskset_payload(rows)
        fields = [e["field"] for e in exc_info.value.errors]
        assert field in fields

    def test_nan_rejected(self):
        with pytest.raises(RequestValidationError):
            parse_taskset_payload([[math.nan, 4]])

    def test_all_errors_collected(self):
        with pytest.raises(RequestValidationError) as exc_info:
            parse_taskset_payload([[-1, 4], [1, 4], [9, 4]])
        fields = [e["field"] for e in exc_info.value.errors]
        assert fields == ["tasks[0].cost", "tasks[2]"]

    def test_one_line_summary(self):
        with pytest.raises(RequestValidationError) as exc_info:
            parse_taskset_payload([[-1, 4], [9, 4]])
        message = str(exc_info.value)
        assert "\n" not in message
        assert "+1 more" in message

    def test_task_limit(self):
        rows = [[1, 4]] * (MAX_TASKS + 1)
        with pytest.raises(RequestValidationError, match="too many tasks"):
            parse_taskset_payload(rows)


class TestAdmitRequest:
    def test_happy_path(self):
        req = parse_admit_request(
            {"tasks": [[1, 4]], "processors": 2, "algorithm": "spa2"}
        )
        assert req.processors == 2
        assert req.algorithm == "spa2"
        assert len(req.taskset) == 1

    def test_algorithm_defaults_to_rmts(self):
        req = parse_admit_request({"tasks": [[1, 4]], "processors": 1})
        assert req.algorithm == "rmts"

    def test_unknown_algorithm(self):
        with pytest.raises(RequestValidationError, match="unknown algorithm"):
            parse_admit_request(
                {"tasks": [[1, 4]], "processors": 1, "algorithm": "zap"}
            )

    @pytest.mark.parametrize("m", [None, 0, -1, 2.5, "four", True])
    def test_bad_processors(self, m):
        payload = {"tasks": [[1, 4]], "algorithm": "rmts"}
        if m is not None:
            payload["processors"] = m
        with pytest.raises(RequestValidationError) as exc_info:
            parse_admit_request(payload)
        assert any(e["field"] == "processors" for e in exc_info.value.errors)

    def test_non_object_body(self):
        with pytest.raises(RequestValidationError):
            parse_admit_request([1, 2, 3])

    def test_errors_from_all_sections_combined(self):
        with pytest.raises(RequestValidationError) as exc_info:
            parse_admit_request(
                {"tasks": [[-1, 4]], "processors": 0, "algorithm": "zap"}
            )
        fields = {e["field"] for e in exc_info.value.errors}
        assert {"algorithm", "processors", "tasks[0].cost"} <= fields

    def test_payload_shape_is_stable(self):
        with pytest.raises(RequestValidationError) as exc_info:
            parse_admit_request({})
        payload = exc_info.value.to_payload()
        assert payload["error"] == "validation"
        assert all(set(d) == {"field", "message"} for d in payload["details"])
