"""Tests for the partitioned discrete-event simulator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.partition import PartitionResult, ProcessorState
from repro.core.rmts import partition_rmts
from repro.core.rmts_light import partition_rmts_light
from repro.core.rta import response_times
from repro.core.task import Subtask, SubtaskKind, Task, TaskSet
from repro.sim.engine import default_horizon, simulate_partition
from repro.taskgen.generators import TaskSetGenerator

from tests.conftest import integer_taskset_strategy


def uni_partition(taskset):
    proc = ProcessorState(index=0)
    for t in taskset:
        proc.add(Subtask.whole(t))
    return PartitionResult(
        algorithm="test", taskset=taskset, processors=[proc], success=True
    )


class TestDefaultHorizon:
    def test_uses_hyperperiod_when_integer(self):
        ts = TaskSet.from_pairs([(1, 4), (1, 6)])
        assert default_horizon(ts, cycles=2) == pytest.approx(24.0)

    def test_falls_back_for_irrational(self):
        ts = TaskSet.from_pairs([(1, 3.7)])
        assert default_horizon(ts, fallback_periods=10) == pytest.approx(37.0)


class TestSingleProcessor:
    def test_simple_schedulable_set(self):
        ts = TaskSet.from_pairs([(1, 4), (2, 8)])
        sim = simulate_partition(uni_partition(ts), horizon=32.0)
        assert sim.ok
        assert sim.jobs_completed == 8 + 4

    def test_response_times_match_rta(self):
        ts = TaskSet.from_pairs([(1, 4), (2, 8), (2, 16)])
        sim = simulate_partition(uni_partition(ts), horizon=64.0)
        # synchronous release: max observed response == RTA exactly
        assert sim.max_response[0] == pytest.approx(1.0)
        assert sim.max_response[1] == pytest.approx(3.0)
        assert sim.max_response[2] == pytest.approx(6.0)

    def test_overload_misses(self):
        ts = TaskSet.from_pairs([(3, 4), (3, 8)])
        sim = simulate_partition(uni_partition(ts), horizon=32.0)
        assert not sim.ok
        assert any(m.tid == 1 for m in sim.misses)

    def test_boundary_meets_deadline_exactly(self):
        # (2,4),(2,8),(4,16): U=1; tau2 finishes exactly at t=16.
        ts = TaskSet.from_pairs([(2, 4), (2, 8), (4, 16)])
        sim = simulate_partition(uni_partition(ts), horizon=48.0)
        assert sim.ok
        assert sim.max_response[2] == pytest.approx(16.0)

    def test_stop_on_miss(self):
        ts = TaskSet.from_pairs([(3, 4), (3, 8)])
        sim = simulate_partition(
            uni_partition(ts), horizon=1000.0, stop_on_miss=True
        )
        assert len(sim.misses) == 1

    def test_incomplete_partition_rejected(self):
        ts = TaskSet.from_pairs([(1, 4)])
        part = uni_partition(ts)
        part.unassigned_tids = [0]
        with pytest.raises(ValueError):
            simulate_partition(part)

    def test_bad_horizon_rejected(self):
        ts = TaskSet.from_pairs([(1, 4)])
        with pytest.raises(ValueError):
            simulate_partition(uni_partition(ts), horizon=0.0)


class TestSplitTaskExecution:
    def _split_partition(self):
        """tau0=(2,4) and tau1=(6,12) split as body(2)@P1, tail(4)@P0."""
        ts = TaskSet.from_pairs([(2, 4), (6, 12)])
        t0, t1 = ts[0], ts[1]
        p0 = ProcessorState(index=0)
        p0.add(Subtask.whole(t0))
        p0.add(Subtask(cost=4, period=12, deadline=10, parent=t1,
                       index=2, kind=SubtaskKind.TAIL))
        p1 = ProcessorState(index=1)
        p1.add(Subtask(cost=2, period=12, deadline=12, parent=t1,
                       index=1, kind=SubtaskKind.BODY))
        return PartitionResult(
            algorithm="test", taskset=ts, processors=[p0, p1], success=True
        )

    def test_split_task_meets_deadlines(self):
        sim = simulate_partition(self._split_partition(), horizon=48.0)
        assert sim.ok

    def test_precedence_respected_in_trace(self):
        sim = simulate_partition(
            self._split_partition(), horizon=48.0, record_trace=True
        )
        assert sim.trace.check_all() == []

    def test_tail_ready_deferred_by_body(self):
        sim = simulate_partition(
            self._split_partition(), horizon=48.0, record_trace=True
        )
        by_task = sim.trace.by_task()
        tail_ivs = [i for i in by_task[1]
                    if i.piece_index == 2 and i.job_index == 0]
        body_ivs = [i for i in by_task[1]
                    if i.piece_index == 1 and i.job_index == 0]
        # job 0's body runs [0,2] (alone on P1); its tail starts at >= 2.
        assert min(i.start for i in tail_ivs) >= 2.0 - 1e-9
        assert max(i.end for i in body_ivs) == pytest.approx(2.0)

    def test_executed_time_per_job_equals_cost(self):
        sim = simulate_partition(
            self._split_partition(), horizon=24.0, record_trace=True
        )
        per_job = sim.trace.executed_per_job()
        assert per_job[(1, 0)] == pytest.approx(6.0)
        assert per_job[(0, 0)] == pytest.approx(2.0)


class TestPartitionIntegration:
    @given(st.integers(0, 3_000))
    @settings(max_examples=15, deadline=None)
    def test_accepted_rmts_partitions_never_miss(self, seed):
        """Lemma 4, empirically."""
        rng = np.random.default_rng(seed)
        m = int(rng.integers(2, 4))
        gen = TaskSetGenerator(n=3 * m, period_model="discrete")
        ts = gen.generate(
            u_norm=float(rng.uniform(0.6, 0.92)), processors=m, seed=rng
        )
        part = partition_rmts(ts, m)
        if not part.success:
            return
        sim = simulate_partition(part, record_trace=True)
        assert sim.ok, f"deadline miss in accepted partition (seed {seed})"
        assert sim.trace.check_all() == []

    @given(st.integers(0, 3_000))
    @settings(max_examples=15, deadline=None)
    def test_observed_responses_bounded_by_rta(self, seed):
        rng = np.random.default_rng(seed)
        m = 2
        gen = TaskSetGenerator(n=6, period_model="discrete")
        ts = gen.generate(
            u_norm=float(rng.uniform(0.6, 0.9)), processors=m, seed=rng
        )
        part = partition_rmts_light(ts, m)
        if not part.success:
            return
        sim = simulate_partition(part)
        rta = part.response_time_report()
        for proc in part.processors:
            result = rta[proc.index]
            ordered = sorted(proc.subtasks, key=lambda s: s.priority)
            for sub, resp in zip(ordered, result.responses):
                observed = sim.max_piece_response.get(
                    (sub.parent.tid, sub.index)
                )
                if observed is not None:
                    assert observed <= resp + 1e-6

    @given(integer_taskset_strategy(min_tasks=2, max_tasks=5, max_period=12))
    @settings(max_examples=25, deadline=None)
    def test_uniproc_sim_agrees_with_rta(self, ts):
        """Exact RTA and hyperperiod simulation agree on schedulability
        (synchronous release is the critical instant)."""
        if ts.total_utilization > 1.0:
            return
        subs = [Subtask.whole(t) for t in ts]
        analysis = response_times(subs)
        sim = simulate_partition(
            uni_partition(ts), horizon=float(ts.hyperperiod())
        )
        assert analysis.schedulable == sim.ok
        if analysis.schedulable:
            ordered = sorted(subs, key=lambda s: s.priority)
            for sub, resp in zip(ordered, analysis.responses):
                assert sim.max_response[sub.parent.tid] <= resp + 1e-9
