"""Edge cases of the partitioned discrete-event engine."""

import pytest

from repro.core.partition import PartitionResult, ProcessorState
from repro.core.rmts import partition_rmts
from repro.core.task import Subtask, SubtaskKind, Task, TaskSet
from repro.sim.engine import simulate_partition

from tests.sim.test_engine import uni_partition


class TestDegenerateInputs:
    def test_horizon_shorter_than_first_period(self):
        ts = TaskSet.from_pairs([(1, 10)])
        sim = simulate_partition(uni_partition(ts), horizon=5.0)
        # one job released at 0, completes at 1, deadline at 10 > horizon
        assert sim.ok
        assert sim.jobs_completed == 1

    def test_horizon_exactly_one_period(self):
        ts = TaskSet.from_pairs([(2, 8)])
        sim = simulate_partition(uni_partition(ts), horizon=8.0)
        assert sim.jobs_completed == 1
        assert sim.max_response[0] == pytest.approx(2.0)

    def test_empty_processor_in_partition(self):
        ts = TaskSet.from_pairs([(1, 4)])
        p0 = ProcessorState(index=0)
        p0.add(Subtask.whole(ts[0]))
        p1 = ProcessorState(index=1)  # idle processor
        part = PartitionResult(
            algorithm="t", taskset=ts, processors=[p0, p1], success=True
        )
        sim = simulate_partition(part, horizon=16.0, record_trace=True)
        assert sim.ok
        assert sim.trace.busy_time(1) == 0.0

    def test_single_task_full_utilization(self):
        ts = TaskSet.from_pairs([(10, 10)])
        sim = simulate_partition(uni_partition(ts), horizon=50.0)
        assert sim.ok
        assert sim.max_response[0] == pytest.approx(10.0)

    def test_very_many_jobs(self):
        ts = TaskSet.from_pairs([(1, 2), (2, 1000)])
        sim = simulate_partition(uni_partition(ts), horizon=10_000.0)
        assert sim.ok
        assert sim.jobs_completed == 5000 + 10


class TestThreeWaySplitExecution:
    def _three_piece_partition(self):
        """A task split across three processors: body, body, tail."""
        ts = TaskSet.from_pairs([(3, 4), (3, 4), (9, 12)])
        t_hi1, t_hi2, t_split = ts[0], ts[1], ts[2]
        p0 = ProcessorState(index=0)
        p0.add(Subtask.whole(t_hi1))
        p0.add(Subtask(cost=1, period=12, deadline=12, parent=t_split,
                       index=1, kind=SubtaskKind.BODY))
        p1 = ProcessorState(index=1)
        p1.add(Subtask.whole(t_hi2))
        p1.add(Subtask(cost=1, period=12, deadline=11, parent=t_split,
                       index=2, kind=SubtaskKind.BODY))
        p2 = ProcessorState(index=2)
        p2.add(Subtask(cost=7, period=12, deadline=10, parent=t_split,
                       index=3, kind=SubtaskKind.TAIL))
        return PartitionResult(
            algorithm="t", taskset=ts, processors=[p0, p1, p2], success=True,
            # Deliberately non-Lemma-2 structure (bodies are not highest
            # priority) to exercise engine generality; opt out of the
            # debug sanitizer's well-formedness check.
            info={"synthetic": True},
        )

    def test_chain_executes_in_order(self):
        part = self._three_piece_partition()
        sim = simulate_partition(part, horizon=48.0, record_trace=True)
        assert sim.trace.check_piece_order() == []
        assert sim.trace.check_all() == []

    def test_migration_count_is_pieces_minus_one_per_job(self):
        part = self._three_piece_partition()
        sim = simulate_partition(part, horizon=48.0, record_trace=True)
        # 4 jobs of the split task in 48 time units, 2 migrations each
        assert sim.trace.migrations() == 4 * 2

    def test_piece_responses_reported_per_index(self):
        part = self._three_piece_partition()
        sim = simulate_partition(part, horizon=48.0)
        tid = 2
        assert (tid, 1) in sim.max_piece_response
        assert (tid, 2) in sim.max_piece_response
        assert (tid, 3) in sim.max_piece_response


class TestSimultaneousEvents:
    def test_release_and_completion_coincide(self):
        # (2,4): completion at 2; (2,2)?? choose (1,2),(2,4):
        # tau0 completes at 1; tau0 rereleases at 2 exactly when tau1
        # may be running; all boundaries integer-aligned.
        ts = TaskSet.from_pairs([(1, 2), (2, 4)])
        sim = simulate_partition(uni_partition(ts), horizon=40.0)
        assert sim.ok
        assert sim.max_response[1] == pytest.approx(4.0)

    def test_all_tasks_same_period(self):
        ts = TaskSet.from_pairs([(1, 6), (2, 6), (3, 6)])
        sim = simulate_partition(uni_partition(ts), horizon=36.0)
        assert sim.ok
        # they execute back to back: responses 1, 3, 6
        assert sim.max_response[0] == pytest.approx(1.0)
        assert sim.max_response[1] == pytest.approx(3.0)
        assert sim.max_response[2] == pytest.approx(6.0)


class TestRepeatedSimulationIsPure:
    def test_same_partition_object_reusable(self, tight_harmonic_set):
        part = partition_rmts(tight_harmonic_set, 2)
        a = simulate_partition(part, horizon=96.0)
        b = simulate_partition(part, horizon=96.0)
        assert a.max_response == b.max_response
        assert a.jobs_completed == b.jobs_completed
