"""Tests for the simulator extensions: offsets and overhead injection."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.rmts import partition_rmts
from repro.core.task import TaskSet
from repro.sim.engine import simulate_partition
from repro.taskgen.generators import TaskSetGenerator

from tests.sim.test_engine import uni_partition


class TestOffsets:
    def test_offsets_shift_releases(self):
        ts = TaskSet.from_pairs([(1, 4), (2, 8)])
        sim = simulate_partition(
            uni_partition(ts), horizon=32.0, offsets={0: 2.0},
            record_trace=True,
        )
        assert sim.ok
        first = min(
            iv.start for iv in sim.trace.intervals
            if iv.tid == 0 and iv.job_index == 0
        )
        assert first >= 2.0 - 1e-9

    def test_negative_offset_rejected(self):
        ts = TaskSet.from_pairs([(1, 4)])
        with pytest.raises(ValueError):
            simulate_partition(uni_partition(ts), horizon=8.0,
                               offsets={0: -1.0})

    @given(st.integers(0, 3_000))
    @settings(max_examples=15, deadline=None)
    def test_synchronous_release_is_worst_case(self, seed):
        """Offsets never create a miss that the synchronous case lacks:
        if the synchronous simulation is clean, any offset pattern is."""
        rng = np.random.default_rng(seed)
        gen = TaskSetGenerator(n=6, period_model="discrete")
        ts = gen.generate(u_norm=float(rng.uniform(0.6, 0.9)),
                          processors=2, seed=rng)
        part = partition_rmts(ts, 2)
        if not part.success:
            return
        sync = simulate_partition(part)
        assert sync.ok
        offsets = {t.tid: float(rng.uniform(0, t.period)) for t in ts}
        shifted = simulate_partition(part, offsets=offsets)
        assert shifted.ok

    def test_offset_responses_never_worse(self):
        ts = TaskSet.from_pairs([(2, 4), (2, 8), (4, 16)])
        part = uni_partition(ts)
        sync = simulate_partition(part, horizon=64.0)
        # fresh partition object for an independent run
        shifted = simulate_partition(
            uni_partition(ts), horizon=64.0, offsets={1: 1.0, 2: 3.0}
        )
        for tid, r_sync in sync.max_response.items():
            r_shift = shifted.max_response.get(tid)
            if r_shift is not None:
                assert r_shift <= r_sync + 1e-9


class TestOverheads:
    def test_zero_overhead_is_baseline(self):
        ts = TaskSet.from_pairs([(2, 4), (2, 8), (4, 16)])
        a = simulate_partition(uni_partition(ts), horizon=48.0)
        b = simulate_partition(
            uni_partition(ts), horizon=48.0,
            preemption_overhead=0.0, migration_overhead=0.0,
        )
        assert a.max_response == b.max_response

    def test_preemption_overhead_breaks_saturated_processor(self):
        # U = 1.0 with preemptions: any overhead causes a miss.
        ts = TaskSet.from_pairs([(2, 4), (2, 8), (4, 16)])
        sim = simulate_partition(
            uni_partition(ts), horizon=48.0, preemption_overhead=0.05
        )
        assert not sim.ok

    def test_slack_absorbs_small_overhead(self):
        ts = TaskSet.from_pairs([(1, 4), (1, 8), (2, 16)])  # U = 0.5
        sim = simulate_partition(
            uni_partition(ts), horizon=48.0, preemption_overhead=0.2
        )
        assert sim.ok

    def test_overhead_increases_responses(self):
        ts = TaskSet.from_pairs([(1, 4), (1, 8), (2, 16)])
        clean = simulate_partition(uni_partition(ts), horizon=48.0)
        loaded = simulate_partition(
            uni_partition(ts), horizon=48.0, preemption_overhead=0.2
        )
        # the lowest-priority task gets preempted, so it pays
        assert loaded.max_response[2] >= clean.max_response[2]

    def test_migration_overhead_applies_to_split_tails(self):
        ts = TaskSet.from_pairs([(2, 4), (4, 8), (7, 16), (12, 32)])
        part = partition_rmts(ts, 2)
        assert part.split_tids()
        clean = simulate_partition(part, horizon=96.0)
        part2 = partition_rmts(ts, 2)
        loaded = simulate_partition(
            part2, horizon=96.0, migration_overhead=0.1
        )
        split_tid = part.split_tids()[0]
        assert loaded.max_response[split_tid] > clean.max_response[split_tid] - 1e-9

    def test_negative_overhead_rejected(self):
        ts = TaskSet.from_pairs([(1, 4)])
        with pytest.raises(ValueError):
            simulate_partition(uni_partition(ts), horizon=8.0,
                               preemption_overhead=-0.1)
