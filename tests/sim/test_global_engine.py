"""Tests for the global-scheduling simulator and the Dhall effect."""

import pytest

from repro.core.baselines.global_rm import dhall_taskset, rm_us_priority_order
from repro.core.task import TaskSet
from repro.sim.global_engine import simulate_global


class TestBasics:
    def test_single_processor_rm(self):
        ts = TaskSet.from_pairs([(1, 4), (2, 8)])
        sim = simulate_global(ts, 1, horizon=32.0)
        assert sim.ok
        assert sim.max_response[1] == pytest.approx(3.0)

    def test_two_processors_run_in_parallel(self):
        ts = TaskSet.from_pairs([(4, 8), (4, 8)])
        sim = simulate_global(ts, 2, horizon=16.0)
        assert sim.ok
        # both jobs run simultaneously: responses equal costs
        assert sim.max_response[0] == pytest.approx(4.0)
        assert sim.max_response[1] == pytest.approx(4.0)

    def test_busy_time_accounts_parallelism(self):
        ts = TaskSet.from_pairs([(4, 8), (4, 8)])
        sim = simulate_global(ts, 2, horizon=8.0)
        assert sim.busy_time == pytest.approx(8.0)

    def test_overload_detected(self):
        ts = TaskSet.from_pairs([(8, 8), (8, 8), (8, 8)])
        sim = simulate_global(ts, 2, horizon=16.0)
        assert not sim.ok

    def test_rejects_bad_args(self):
        ts = TaskSet.from_pairs([(1, 4)])
        with pytest.raises(ValueError):
            simulate_global(ts, 0, horizon=8.0)
        with pytest.raises(ValueError):
            simulate_global(ts, 1, horizon=-1.0)

    def test_priority_order_validated(self):
        ts = TaskSet.from_pairs([(1, 4), (1, 8)])
        with pytest.raises(ValueError):
            simulate_global(ts, 1, horizon=8.0, priority_order=[0])

    def test_stop_on_miss(self):
        ts = TaskSet.from_pairs([(8, 8), (8, 8), (8, 8)])
        sim = simulate_global(ts, 2, horizon=100.0, stop_on_miss=True)
        assert len(sim.misses) >= 1


class TestDhallEffect:
    @pytest.mark.parametrize("m", [2, 4, 8])
    def test_global_rm_misses(self, m):
        ts = dhall_taskset(m, 0.05)
        sim = simulate_global(ts, m, horizon=3.0 * 1.05)
        long_tid = max(t.tid for t in ts)
        assert any(miss.tid == long_tid for miss in sim.misses)

    @pytest.mark.parametrize("m", [2, 4, 8])
    def test_rm_us_priorities_fix_the_witness(self, m):
        ts = dhall_taskset(m, 0.05)
        sim = simulate_global(
            ts, m, horizon=3.0 * 1.05,
            priority_order=rm_us_priority_order(ts, m),
        )
        assert sim.ok

    def test_effect_persists_at_tiny_epsilon(self):
        ts = dhall_taskset(4, 0.001)
        assert ts.normalized_utilization(4) < 0.26
        sim = simulate_global(ts, 4, horizon=2.1)
        assert not sim.ok
