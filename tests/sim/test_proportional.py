"""Tests for the Pfair-style quantum scheduler and trace overhead metrics."""

import pytest

from repro.core.rmts import partition_rmts
from repro.core.task import TaskSet
from repro.sim.engine import simulate_partition
from repro.sim.proportional import simulate_pfair
from repro.sim.trace import ExecutionInterval, Trace


class TestSimulatePfair:
    def test_schedulable_harmonic_set(self):
        ts = TaskSet.from_pairs([(2, 4), (4, 8), (7, 16), (12, 32)])
        pf = simulate_pfair(ts, 2, horizon=96.0, quantum=1.0)
        assert pf.ok
        assert pf.jobs_completed == 24 + 12 + 6 + 3

    def test_full_utilization_two_processors(self):
        # EPDF is optimal on M <= 2: U = 2.0 exactly must work with
        # quantum-aligned parameters.
        ts = TaskSet.from_pairs([(2, 4), (2, 4), (4, 8), (4, 8)])
        pf = simulate_pfair(ts, 2, horizon=64.0, quantum=1.0)
        assert pf.ok

    def test_overload_misses(self):
        ts = TaskSet.from_pairs([(4, 4), (4, 4), (4, 4)])
        pf = simulate_pfair(ts, 2, horizon=20.0, quantum=1.0)
        assert not pf.ok

    def test_trace_invariants_hold(self):
        ts = TaskSet.from_pairs([(2, 4), (4, 8), (7, 16), (12, 32)])
        pf = simulate_pfair(ts, 2, horizon=64.0, quantum=1.0)
        assert pf.trace.check_all() == []

    def test_dhall_set_fine_under_pfair(self):
        """Proportional fairness has no Dhall effect — that's its selling
        point; the price is preemptions, not utilization."""
        from repro.core.baselines.global_rm import dhall_taskset

        ts = dhall_taskset(4, 0.05)
        pf = simulate_pfair(ts, 4, horizon=21.0, quantum=0.05)
        assert pf.ok

    def test_validates_args(self, harmonic_set):
        with pytest.raises(ValueError):
            simulate_pfair(harmonic_set, 0, horizon=10.0)
        with pytest.raises(ValueError):
            simulate_pfair(harmonic_set, 2, horizon=10.0, quantum=0.0)
        with pytest.raises(ValueError):
            simulate_pfair(harmonic_set, 2, horizon=-1.0)


class TestOverheadComparison:
    def test_pfair_preempts_more_than_rmts(self):
        ts = TaskSet.from_pairs([(2, 4), (4, 8), (7, 16), (12, 32)])
        part = partition_rmts(ts, 2)
        sim = simulate_partition(part, horizon=96.0, record_trace=True)
        pf = simulate_pfair(ts, 2, horizon=96.0, quantum=1.0)
        assert sim.ok and pf.ok
        assert pf.trace.preemptions() > sim.trace.preemptions()

    def test_same_busy_time_same_workload(self):
        ts = TaskSet.from_pairs([(2, 4), (4, 8), (7, 16), (12, 32)])
        part = partition_rmts(ts, 2)
        sim = simulate_partition(part, horizon=96.0, record_trace=True)
        pf = simulate_pfair(ts, 2, horizon=96.0, quantum=1.0)
        a = sim.trace.overhead_summary()
        b = pf.overhead_summary()
        assert a["busy_time"] == pytest.approx(b["busy_time"], rel=0.02)


class TestTraceOverheadMetrics:
    def iv(self, proc, tid, start, end, job=0, piece=1):
        return ExecutionInterval(processor=proc, tid=tid, job_index=job,
                                 piece_index=piece, start=start, end=end)

    def test_context_switches_counted(self):
        t = Trace()
        t.record(self.iv(0, 1, 0, 1))
        t.record(self.iv(0, 2, 1, 2))
        t.record(self.iv(0, 1, 2, 3))
        assert t.context_switches() == 3

    def test_consecutive_same_piece_no_switch(self):
        t = Trace()
        t.record(self.iv(0, 1, 0, 1))
        t.record(self.iv(0, 1, 1, 2))
        assert t.context_switches() == 1

    def test_preemptions_counted(self):
        t = Trace()
        t.record(self.iv(0, 1, 0, 1))   # tau1 starts
        t.record(self.iv(0, 2, 1, 2))   # preempted by tau2
        t.record(self.iv(0, 1, 2, 3))   # tau1 resumes -> 1 preemption
        assert t.preemptions() == 1

    def test_migrations_counted(self):
        t = Trace()
        t.record(self.iv(0, 1, 0, 1, piece=1))
        t.record(self.iv(1, 1, 1, 2, piece=2))  # split handoff
        assert t.migrations() == 1

    def test_unsplit_jobs_never_migrate(self):
        t = Trace()
        t.record(self.iv(0, 1, 0, 1))
        t.record(self.iv(0, 1, 4, 5, job=1))
        assert t.migrations() == 0

    def test_summary_keys(self):
        t = Trace()
        t.record(self.iv(0, 1, 0, 2))
        summary = t.overhead_summary()
        assert summary["busy_time"] == pytest.approx(2.0)
        assert summary["context_switches"] == 1
        assert summary["preemptions"] == 0
        assert summary["migrations"] == 0
