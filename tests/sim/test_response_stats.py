"""Tests for response-distribution collection."""

import pytest

from repro.core.rmts import partition_rmts
from repro.core.task import TaskSet
from repro.sim.engine import simulate_partition

from tests.sim.test_engine import uni_partition


class TestResponseSamples:
    def test_disabled_by_default(self):
        ts = TaskSet.from_pairs([(1, 4)])
        sim = simulate_partition(uni_partition(ts), horizon=16.0)
        assert sim.response_samples is None
        with pytest.raises(ValueError):
            sim.response_stats()

    def test_samples_collected_per_task(self):
        ts = TaskSet.from_pairs([(1, 4), (2, 8)])
        sim = simulate_partition(
            uni_partition(ts), horizon=32.0, collect_responses=True
        )
        assert len(sim.response_samples[0]) == 8
        assert len(sim.response_samples[1]) == 4

    def test_stats_consistent_with_max(self):
        ts = TaskSet.from_pairs([(2, 4), (4, 8), (7, 16), (12, 32)])
        part = partition_rmts(ts, 2)
        sim = simulate_partition(part, horizon=96.0, collect_responses=True)
        stats = sim.response_stats()
        for tid, s in stats.items():
            assert s["max"] == pytest.approx(sim.max_response[tid])
            assert s["min"] <= s["mean"] <= s["max"] + 1e-12
            assert s["min"] <= s["p95"] <= s["max"] + 1e-12

    def test_offsets_reduce_observed_responses(self):
        ts = TaskSet.from_pairs([(2, 4), (2, 8), (4, 16)])
        sync = simulate_partition(
            uni_partition(ts), horizon=64.0, collect_responses=True
        )
        desync = simulate_partition(
            uni_partition(ts), horizon=64.0, collect_responses=True,
            offsets={1: 2.0, 2: 3.0},
        )
        # mean response of the lowest-priority task improves with offsets
        assert (
            desync.response_stats()[2]["mean"]
            <= sync.response_stats()[2]["mean"] + 1e-9
        )
