"""Tests for the sporadic release model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.rmts import partition_rmts
from repro.core.task import TaskSet
from repro.sim.engine import simulate_partition
from repro.taskgen.generators import TaskSetGenerator

from tests.sim.test_engine import uni_partition


class TestSporadicReleases:
    def test_fewer_jobs_than_periodic(self):
        ts = TaskSet.from_pairs([(1, 4), (2, 8)])
        periodic = simulate_partition(uni_partition(ts), horizon=200.0)
        sporadic = simulate_partition(
            uni_partition(ts), horizon=200.0,
            release_model="sporadic", sporadic_slack=1.0,
            rng=np.random.default_rng(1),
        )
        assert sporadic.jobs_completed < periodic.jobs_completed

    def test_zero_slack_equals_periodic(self):
        ts = TaskSet.from_pairs([(2, 4), (2, 8), (4, 16)])
        periodic = simulate_partition(uni_partition(ts), horizon=96.0)
        degenerate = simulate_partition(
            uni_partition(ts), horizon=96.0,
            release_model="sporadic", sporadic_slack=0.0,
            rng=np.random.default_rng(1),
        )
        assert degenerate.jobs_completed == periodic.jobs_completed
        assert degenerate.max_response == pytest.approx(periodic.max_response)

    def test_deterministic_given_rng(self):
        ts = TaskSet.from_pairs([(1, 4), (2, 8)])
        a = simulate_partition(
            uni_partition(ts), horizon=100.0, release_model="sporadic",
            rng=np.random.default_rng(7),
        )
        b = simulate_partition(
            uni_partition(ts), horizon=100.0, release_model="sporadic",
            rng=np.random.default_rng(7),
        )
        assert a.max_response == b.max_response

    def test_invalid_model_rejected(self):
        ts = TaskSet.from_pairs([(1, 4)])
        with pytest.raises(ValueError):
            simulate_partition(uni_partition(ts), horizon=8.0,
                               release_model="bursty")
        with pytest.raises(ValueError):
            simulate_partition(uni_partition(ts), horizon=8.0,
                               release_model="sporadic", sporadic_slack=-1.0)

    @given(st.integers(0, 3_000))
    @settings(max_examples=12, deadline=None)
    def test_sporadic_never_breaks_accepted_partitions(self, seed):
        """The sporadic model only stretches inter-release times, which
        can only reduce interference: accepted partitions stay clean."""
        rng = np.random.default_rng(seed)
        m = 2
        gen = TaskSetGenerator(n=6, period_model="discrete")
        ts = gen.generate(u_norm=float(rng.uniform(0.7, 0.92)),
                          processors=m, seed=rng)
        part = partition_rmts(ts, m)
        if not part.success:
            return
        sim = simulate_partition(
            part, release_model="sporadic", sporadic_slack=0.7,
            rng=np.random.default_rng(seed + 1),
        )
        assert sim.ok, sim.misses[:3]
