"""Unit tests for execution traces and their invariant checks."""

import pytest

from repro.sim.trace import ExecutionInterval, Trace


def iv(proc, tid, start, end, job=0, piece=1):
    return ExecutionInterval(
        processor=proc, tid=tid, job_index=job, piece_index=piece,
        start=start, end=end,
    )


class TestRecording:
    def test_record_and_len(self):
        t = Trace()
        t.record(iv(0, 1, 0.0, 1.0))
        assert len(t) == 1

    def test_zero_length_intervals_dropped(self):
        t = Trace()
        t.record(iv(0, 1, 1.0, 1.0))
        assert len(t) == 0

    def test_negative_interval_rejected(self):
        t = Trace()
        with pytest.raises(ValueError):
            t.record(iv(0, 1, 2.0, 1.0))


class TestQueries:
    def test_by_processor_sorted(self):
        t = Trace()
        t.record(iv(0, 1, 5.0, 6.0))
        t.record(iv(0, 2, 0.0, 1.0))
        t.record(iv(1, 1, 2.0, 3.0))
        groups = t.by_processor()
        assert [i.start for i in groups[0]] == [0.0, 5.0]
        assert len(groups[1]) == 1

    def test_busy_time(self):
        t = Trace()
        t.record(iv(0, 1, 0.0, 2.0))
        t.record(iv(0, 2, 3.0, 4.0))
        assert t.busy_time(0) == pytest.approx(3.0)
        assert t.busy_time(1) == 0.0

    def test_executed_per_job(self):
        t = Trace()
        t.record(iv(0, 1, 0.0, 2.0, job=0))
        t.record(iv(1, 1, 3.0, 4.0, job=0, piece=2))
        assert t.executed_per_job()[(1, 0)] == pytest.approx(3.0)


class TestInvariantChecks:
    def test_clean_trace_passes(self):
        t = Trace()
        t.record(iv(0, 1, 0.0, 1.0))
        t.record(iv(0, 2, 1.0, 2.0))
        t.record(iv(1, 3, 0.5, 1.5))
        assert t.check_all() == []

    def test_processor_overlap_detected(self):
        t = Trace()
        t.record(iv(0, 1, 0.0, 2.0))
        t.record(iv(0, 2, 1.0, 3.0))
        errors = t.check_processor_exclusivity()
        assert errors and "overlap" in errors[0]

    def test_intra_task_parallelism_detected(self):
        t = Trace()
        t.record(iv(0, 7, 0.0, 2.0, piece=1))
        t.record(iv(1, 7, 1.0, 3.0, piece=2))
        errors = t.check_no_intra_task_parallelism()
        assert errors

    def test_piece_order_violation_detected(self):
        t = Trace()
        t.record(iv(0, 7, 2.0, 3.0, piece=1))
        t.record(iv(1, 7, 0.0, 1.0, piece=2))
        errors = t.check_piece_order()
        assert errors and "piece" in errors[0]

    def test_adjacent_intervals_not_overlap(self):
        t = Trace()
        t.record(iv(0, 1, 0.0, 1.0))
        t.record(iv(0, 2, 1.0, 2.0))
        assert t.check_processor_exclusivity() == []


class TestGantt:
    def test_empty(self):
        assert "empty" in Trace().gantt_text()

    def test_rows_per_processor(self):
        t = Trace()
        t.record(iv(0, 1, 0.0, 1.0))
        t.record(iv(1, 2, 0.0, 0.5))
        text = t.gantt_text()
        assert "P0" in text and "P1" in text
