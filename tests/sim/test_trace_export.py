"""Tests for trace CSV export."""

import csv
import io

import pytest

from repro.core.rmts import partition_rmts
from repro.core.task import TaskSet
from repro.sim.engine import simulate_partition
from repro.sim.trace import ExecutionInterval, Trace


class TestTraceCsv:
    def test_header_and_rows(self):
        t = Trace()
        t.record(ExecutionInterval(processor=0, tid=1, job_index=0,
                                   piece_index=1, start=0.0, end=2.0))
        rows = list(csv.reader(io.StringIO(t.to_csv())))
        assert rows[0] == ["processor", "tid", "job_index", "piece_index",
                           "start", "end"]
        assert rows[1][:2] == ["0", "1"]

    def test_sorted_by_start(self):
        t = Trace()
        t.record(ExecutionInterval(processor=0, tid=1, job_index=0,
                                   piece_index=1, start=5.0, end=6.0))
        t.record(ExecutionInterval(processor=1, tid=2, job_index=0,
                                   piece_index=1, start=1.0, end=2.0))
        rows = list(csv.reader(io.StringIO(t.to_csv())))
        starts = [float(r[4]) for r in rows[1:]]
        assert starts == sorted(starts)

    def test_real_trace_roundtrips_busy_time(self, tmp_path):
        ts = TaskSet.from_pairs([(2, 4), (4, 8), (7, 16), (12, 32)])
        part = partition_rmts(ts, 2)
        sim = simulate_partition(part, horizon=32.0, record_trace=True)
        path = tmp_path / "trace.csv"
        sim.trace.write_csv(str(path))
        with open(path) as fh:
            rows = list(csv.DictReader(fh))
        total = sum(float(r["end"]) - float(r["start"]) for r in rows)
        busy = sum(
            sim.trace.busy_time(p.index) for p in part.processors
        )
        assert total == pytest.approx(busy)
