"""Tests for the uniprocessor simulation wrappers."""

import pytest

from repro.core.task import Subtask, SubtaskKind, Task, TaskSet
from repro.sim.uniproc import simulate_subtasks, simulate_uniprocessor


class TestSimulateUniprocessor:
    def test_schedulable_set(self):
        ts = TaskSet.from_pairs([(1, 4), (2, 8)])
        sim = simulate_uniprocessor(ts)
        assert sim.ok

    def test_liu_layland_boundary_set(self):
        # Classic 2-task worst case: U = 2(sqrt(2)-1) ~ 0.828 is the bound;
        # this set at U ~ 0.833 > bound with critical periods misses.
        ts = TaskSet.from_pairs([(2.5, 5), (3.5, 7)])
        sim = simulate_uniprocessor(ts, horizon=35.0)
        assert not sim.ok

    def test_trace_recorded(self):
        ts = TaskSet.from_pairs([(1, 4), (2, 8)])
        sim = simulate_uniprocessor(ts, record_trace=True)
        assert sim.trace is not None
        assert sim.trace.check_all() == []

    def test_full_harmonic_utilization(self):
        ts = TaskSet.from_pairs([(2, 4), (2, 8), (4, 16)])
        sim = simulate_uniprocessor(ts)
        assert sim.ok
        # the processor is 100% busy over the hyperperiod
        sim2 = simulate_uniprocessor(ts, horizon=16.0, record_trace=True)
        assert sim2.trace.busy_time(0) == pytest.approx(16.0)


class TestSimulateSubtasks:
    def test_constrained_deadline_subtask(self):
        t0 = Task(cost=2, period=4, tid=0)
        t1 = Task(cost=2, period=8, tid=1)
        tail = Subtask(cost=2, period=8, deadline=4, parent=t1,
                       index=2, kind=SubtaskKind.TAIL)
        ts = TaskSet.from_pairs([(2, 4), (2, 8)])
        sim = simulate_subtasks([Subtask.whole(t0), tail], ts, horizon=32.0)
        # job deadline (release + T) is still met, even though the
        # synthetic deadline is tighter than the response.
        assert sim.ok
        assert sim.max_piece_response[(1, 2)] == pytest.approx(4.0)
