"""Shared fixtures for the persistent result-store tests."""

from __future__ import annotations

import sqlite3

import pytest

from repro.store.backend import ResultStore


@pytest.fixture
def store_path(tmp_path):
    return str(tmp_path / "results.db")


@pytest.fixture
def store(store_path):
    """An open store in a fresh temporary file."""
    with ResultStore(store_path) as st:
        yield st


def raw_sql(path: str, statement: str, params=()) -> None:
    """Run one statement against the store file with a private connection.

    Used to simulate tampering/bit rot that the store's own API would
    never produce (checksums are recomputed on every legitimate write).
    """
    conn = sqlite3.connect(path)
    try:
        conn.execute(statement, params)
        conn.commit()
    finally:
        conn.close()
