"""ResultStore: insert-or-get, durability, corruption handling, GC, export."""

import json
import os

import pytest

from repro.perf.telemetry import COUNTERS
from repro.store.backend import (
    STORE_SCHEMA_VERSION,
    ResultStore,
    row_checksum,
)

from .conftest import raw_sql

pytestmark = pytest.mark.store


class TestInsertOrGet:
    def test_put_then_get(self, store):
        store.put("ns", "k", {"answer": 42})
        found, value = store.get("ns", "k")
        assert found and value == {"answer": 42}

    def test_first_writer_wins(self, store):
        assert store.put("ns", "k", [1, 2]) == [1, 2]
        # a losing writer gets the stored value back, not its own
        assert store.put("ns", "k", [9, 9]) == [1, 2]
        assert store.get("ns", "k") == (True, [1, 2])

    def test_namespaces_are_disjoint(self, store):
        store.put("a", "k", 1)
        store.put("b", "k", 2)
        assert store.get("a", "k") == (True, 1)
        assert store.get("b", "k") == (True, 2)

    def test_put_many_and_get_namespace(self, store):
        items = {f"k{i}": [i, i + 1] for i in range(10)}
        store.put_many("bulk", items)
        assert store.get_namespace("bulk") == items
        assert len(store) == 10

    def test_miss_on_absent_key(self, store):
        assert store.get("ns", "nope") == (False, None)


class TestDurability:
    def test_survives_close_and_reopen(self, store_path):
        with ResultStore(store_path) as st:
            st.put("ns", "k", {"x": [1.5, 2.5]})
        with ResultStore(store_path) as st:
            assert st.get("ns", "k") == (True, {"x": [1.5, 2.5]})
            assert st.quarantined_files == 0

    def test_counters_mirrored(self, store):
        before = COUNTERS.snapshot()
        store.put("ns", "k", 1)
        store.get("ns", "k")
        store.get("ns", "absent")
        delta = COUNTERS.delta_since(before)
        assert delta["st_puts"] == 1
        assert delta["st_hits"] == 1
        assert delta["st_misses"] == 1


class TestCorruption:
    def test_corrupt_row_is_dropped_not_served(self, store_path):
        with ResultStore(store_path) as st:
            st.put("ns", "k", {"real": True})
        raw_sql(
            store_path,
            "UPDATE entries SET payload = ? WHERE key = ?",
            ('{"forged":true}', "k"),
        )
        before = COUNTERS.snapshot()
        with ResultStore(store_path) as st:
            assert st.get("ns", "k") == (False, None)  # never served
            assert len(st) == 0  # and removed
        delta = COUNTERS.delta_since(before)
        assert delta["st_corrupt_rows"] == 1
        assert delta["st_misses"] == 1
        assert delta["st_hits"] == 0

    def test_rekeyed_row_fails_checksum(self, store_path):
        # the namespace/key participate in the checksum preimage, so
        # copying a valid payload onto another key must also fail
        with ResultStore(store_path) as st:
            st.put("ns", "a", 1)
        raw_sql(store_path, "UPDATE entries SET key = 'b'")
        with ResultStore(store_path) as st:
            assert st.get("ns", "b") == (False, None)

    def test_get_namespace_skips_bad_rows(self, store_path):
        with ResultStore(store_path) as st:
            st.put_many("ns", {"good": [1], "bad": [2]})
        raw_sql(
            store_path,
            "UPDATE entries SET payload = '[3]' WHERE key = 'bad'",
        )
        with ResultStore(store_path) as st:
            assert st.get_namespace("ns") == {"good": [1]}
            assert len(st) == 1

    def test_verify_reports_and_repairs(self, store_path):
        with ResultStore(store_path) as st:
            st.put_many("ns", {f"k{i}": i for i in range(5)})
        raw_sql(
            store_path,
            "UPDATE entries SET payload = '999' WHERE key = 'k2'",
        )
        with ResultStore(store_path) as st:
            assert st.verify() == [("ns", "k2")]
            assert st.verify() == []  # repaired by removal
            assert len(st) == 4

    def test_schema_version_mismatch_evicts(self, store_path):
        with ResultStore(store_path) as st:
            st.put("ns", "k", 1)
        # forge a row from a "future" payload schema (keep checksum valid,
        # since schema invalidation is a separate check from bit rot)
        raw_sql(store_path, "UPDATE entries SET schema_version = 999")
        before = COUNTERS.snapshot()
        with ResultStore(store_path) as st:
            assert st.get("ns", "k") == (False, None)
            assert len(st) == 0
        assert COUNTERS.delta_since(before)["st_schema_evictions"] == 1


class TestQuarantine:
    def test_garbage_file_is_quarantined_and_rebuilt(self, store_path):
        with open(store_path, "wb") as fh:
            fh.write(b"this is not a sqlite database at all")
        before = COUNTERS.snapshot()
        with ResultStore(store_path) as st:
            assert st.quarantined_files == 1
            st.put("ns", "k", 1)  # the rebuilt store is fully usable
            assert st.get("ns", "k") == (True, 1)
        assert os.path.exists(store_path + ".corrupt-0")
        assert COUNTERS.delta_since(before)["st_quarantines"] == 1

    def test_unknown_store_schema_is_quarantined(self, store_path):
        with ResultStore(store_path) as st:
            st.put("ns", "k", 1)
        raw_sql(
            store_path,
            "UPDATE meta SET value = ? WHERE key = 'store_schema_version'",
            (str(STORE_SCHEMA_VERSION + 1),),
        )
        with ResultStore(store_path) as st:
            assert st.quarantined_files == 1
            assert len(st) == 0  # rebuilt empty, old file set aside

    def test_quarantine_names_do_not_collide(self, store_path):
        for expected in ("corrupt-0", "corrupt-1"):
            with open(store_path, "wb") as fh:
                fh.write(b"garbage")
            with ResultStore(store_path):
                pass
            assert os.path.exists(f"{store_path}.{expected}")


class TestGC:
    def test_ttl_removes_stale_rows(self, store_path):
        with ResultStore(store_path) as st:
            st.put_many("ns", {"old": 1, "new": 2})
        raw_sql(
            store_path,
            "UPDATE entries SET last_access = 1.0 WHERE key = 'old'",
        )
        before = COUNTERS.snapshot()
        with ResultStore(store_path) as st:
            report = st.gc(ttl_seconds=3600.0)
            assert report["removed_ttl"] == 1
            assert st.get("ns", "new") == (True, 2)
            assert st.get("ns", "old") == (False, None)
        assert COUNTERS.delta_since(before)["st_gc_removed"] == 1

    def test_capacity_keeps_most_recently_used(self, store):
        store.put_many("ns", {f"k{i}": i for i in range(6)})
        store.get("ns", "k0")  # refresh k0 so it survives the cut
        report = store.gc(max_entries=3)
        assert report["removed_capacity"] == 3
        assert report["remaining"] == 3
        assert store.get("ns", "k0") == (True, 0)

    def test_noop_gc(self, store):
        store.put("ns", "k", 1)
        report = store.gc()
        assert report == {
            "removed_ttl": 0, "removed_capacity": 0, "remaining": 1,
        }


class TestExportImport:
    def test_round_trip_is_byte_identical(self, store_path, tmp_path):
        with ResultStore(store_path) as st:
            st.put("ns", "k1", {"u": 0.1 + 0.2})  # non-trivial float bytes
            st.put("other", "k2", [1, "two", None])
            lines = list(st.export_jsonl())
        other = str(tmp_path / "copy.db")
        with ResultStore(other) as st:
            report = st.import_jsonl(iter(lines))
            assert report == {"imported": 2, "skipped": 0}
            assert list(st.export_jsonl()) == lines  # exact same bytes
            assert st.get("ns", "k1") == (True, {"u": 0.1 + 0.2})

    def test_foreign_schema_rows_are_skipped(self, store):
        line = json.dumps({
            "namespace": "ns", "key": "k", "payload": "1",
            "schema_version": 999, "created_at": 0.0,
        })
        report = store.import_jsonl(iter([line, "", "  "]))
        assert report == {"imported": 0, "skipped": 1}
        assert len(store) == 0

    def test_import_refuses_non_json_payload(self, store):
        line = json.dumps({
            "namespace": "ns", "key": "k", "payload": "not json {",
            "schema_version": 1, "created_at": 0.0,
        })
        with pytest.raises(json.JSONDecodeError):
            store.import_jsonl(iter([line]))


class TestStats:
    def test_stats_shape(self, store):
        store.put_many("a", {"k1": 1, "k2": 2})
        store.put("b", "k3", 3)
        stats = store.stats().as_dict()
        assert stats["entries"] == 3
        assert stats["by_namespace"] == {"a": 2, "b": 1}
        assert stats["file_bytes"] > 0
        assert stats["quarantined_files"] == 0
        assert stats["store_schema_version"] == STORE_SCHEMA_VERSION


class TestRowChecksum:
    def test_components_all_matter(self):
        base = row_checksum("ns", "k", "payload")
        assert row_checksum("ns", "k", "payload2") != base
        assert row_checksum("ns", "k2", "payload") != base
        assert row_checksum("ns2", "k", "payload") != base
        # and the separator prevents boundary ambiguity
        assert row_checksum("nsk", "", "payload") != row_checksum(
            "ns", "k", "payload"
        )
