"""Resume determinism: interrupted sweeps continue bit-identically.

The load-bearing property is that a sweep interrupted at an arbitrary
cell boundary and later resumed produces *byte-identical* curves to an
uninterrupted run — and recomputes only the unfinished cells, which the
``rta_calls`` counter delta makes observable.
"""

import pytest

from repro.analysis.acceptance import acceptance_sweep
from repro.analysis.algorithms import standard_algorithms
from repro.perf.telemetry import COUNTERS
from repro.store.backend import ResultStore
from repro.store.checkpoint import (
    SweepInterrupted,
    run_sweep,
    sweep_config_key,
)
from repro.taskgen.generators import TaskSetGenerator

pytestmark = pytest.mark.store

# Small but non-degenerate: utilizations high enough that acceptance
# actually varies (curves of all 1.0 would vacuously "match").
GEN = TaskSetGenerator(n=6, period_model="loguniform")
ALGOS = standard_algorithms()
SWEEP_KWARGS = dict(
    processors=2,
    u_grid=[0.75, 0.88, 0.96],
    samples=5,
    seed=7,
)
TOTAL_CELLS = len(SWEEP_KWARGS["u_grid"]) * SWEEP_KWARGS["samples"]


def reference_sweep():
    return acceptance_sweep(ALGOS, GEN, **SWEEP_KWARGS)


class TestEquivalence:
    def test_no_store_matches_acceptance_sweep(self):
        assert run_sweep(ALGOS, GEN, **SWEEP_KWARGS).curves == \
            reference_sweep().curves

    def test_journaled_run_matches_acceptance_sweep(self, store):
        result = run_sweep(ALGOS, GEN, store=store, **SWEEP_KWARGS)
        assert result.curves == reference_sweep().curves
        assert len(store) == TOTAL_CELLS

    def test_curves_vary_across_the_grid(self):
        # guard against the vacuous all-ones configuration
        curves = reference_sweep().curves
        assert any(len(set(curve)) > 1 for curve in curves.values())

    def test_store_accepts_a_path(self, store_path):
        result = run_sweep(ALGOS, GEN, store=store_path, **SWEEP_KWARGS)
        assert result.curves == reference_sweep().curves
        with ResultStore(store_path) as st:
            assert len(st) == TOTAL_CELLS


class TestInterruptAndResume:
    def test_budget_raises_after_journaling(self, store):
        with pytest.raises(SweepInterrupted) as exc:
            run_sweep(
                ALGOS, GEN, store=store, max_new_cells=7,
                checkpoint_every=1, **SWEEP_KWARGS
            )
        assert exc.value.completed == 7
        assert exc.value.total == TOTAL_CELLS
        assert len(store) == 7  # everything computed so far is durable

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_resume_is_bit_identical(self, store, jobs):
        progress = {}
        with pytest.raises(SweepInterrupted):
            run_sweep(
                ALGOS, GEN, store=store, max_new_cells=7,
                checkpoint_every=1, jobs=jobs, **SWEEP_KWARGS
            )
        resumed = run_sweep(
            ALGOS, GEN, store=store, resume=True, jobs=jobs,
            progress=progress, **SWEEP_KWARGS
        )
        assert resumed.curves == reference_sweep().curves
        assert progress["cells_resumed"] == 7
        assert progress["cells_computed"] == TOTAL_CELLS - 7

    def test_resume_recomputes_only_unfinished_cells(self, store):
        # Counter evidence: the analysis work of the resumed run is the
        # work of the missing cells, not the whole sweep.
        before_full = COUNTERS.snapshot()
        run_sweep(ALGOS, GEN, **SWEEP_KWARGS)
        full_rta = COUNTERS.delta_since(before_full)["rta_calls"]
        assert full_rta > 0

        with pytest.raises(SweepInterrupted):
            run_sweep(
                ALGOS, GEN, store=store, max_new_cells=7,
                checkpoint_every=1, **SWEEP_KWARGS
            )
        before_resume = COUNTERS.snapshot()
        run_sweep(ALGOS, GEN, store=store, resume=True, **SWEEP_KWARGS)
        resume_rta = COUNTERS.delta_since(before_resume)["rta_calls"]
        assert 0 < resume_rta < full_rta

    def test_warm_resume_computes_nothing(self, store):
        run_sweep(ALGOS, GEN, store=store, **SWEEP_KWARGS)
        progress = {}
        before = COUNTERS.snapshot()
        warm = run_sweep(
            ALGOS, GEN, store=store, resume=True, progress=progress,
            **SWEEP_KWARGS
        )
        warm_rta = COUNTERS.delta_since(before)["rta_calls"]
        assert warm.curves == reference_sweep().curves
        assert progress["cells_computed"] == 0
        assert progress["cells_resumed"] == TOTAL_CELLS
        assert warm_rta == 0

    def test_without_resume_flag_the_journal_is_ignored(self, store):
        run_sweep(ALGOS, GEN, store=store, **SWEEP_KWARGS)
        progress = {}
        run_sweep(
            ALGOS, GEN, store=store, resume=False, progress=progress,
            **SWEEP_KWARGS
        )
        assert progress["cells_resumed"] == 0
        assert progress["cells_computed"] == TOTAL_CELLS


class TestConfigKey:
    def test_every_parameter_matters(self):
        base = dict(
            processors=2, u_grid=[0.7, 0.8], samples=5, seed=0,
        )
        key = sweep_config_key(["A", "B"], GEN, **base)
        assert key == sweep_config_key(["A", "B"], GEN, **base)
        variants = [
            sweep_config_key(["A"], GEN, **base),
            sweep_config_key(["B", "A"], GEN, **base),
            sweep_config_key(["A", "B"], GEN, **{**base, "processors": 4}),
            sweep_config_key(["A", "B"], GEN, **{**base, "samples": 6}),
            sweep_config_key(["A", "B"], GEN, **{**base, "seed": 1}),
            sweep_config_key(
                ["A", "B"], GEN, **{**base, "u_grid": [0.7, 0.81]}
            ),
            sweep_config_key(
                ["A", "B"], TaskSetGenerator(n=7, period_model="loguniform"),
                **base
            ),
        ]
        assert key not in variants
        assert len(set(variants)) == len(variants)

    def test_float_grid_is_hashed_exactly(self):
        base = dict(processors=2, samples=5, seed=0)
        a = sweep_config_key(["A"], GEN, u_grid=[0.1 + 0.2], **base)
        b = sweep_config_key(["A"], GEN, u_grid=[0.3], **base)
        assert a != b  # 0.1+0.2 != 0.3 in IEEE-754, and the key knows

    def test_different_configs_do_not_share_cells(self, store):
        run_sweep(ALGOS, GEN, store=store, **SWEEP_KWARGS)
        # same store file, different seed: nothing to resume from
        progress = {}
        other = dict(SWEEP_KWARGS, seed=SWEEP_KWARGS["seed"] + 1)
        with pytest.raises(SweepInterrupted):
            run_sweep(
                ALGOS, GEN, store=store, resume=True, max_new_cells=1,
                checkpoint_every=1, progress=progress, **other
            )
        assert progress.get("cells_resumed", 0) == 0


class TestValidation:
    def test_rejects_empty_algorithms(self):
        with pytest.raises(ValueError):
            run_sweep({}, GEN, **SWEEP_KWARGS)

    def test_rejects_zero_samples(self):
        bad = dict(SWEEP_KWARGS, samples=0)
        with pytest.raises(ValueError):
            run_sweep(ALGOS, GEN, **bad)
