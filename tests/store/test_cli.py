"""``python -m repro store``: exit codes and operator-facing output."""

import json

import pytest

from repro.store.backend import ResultStore
from repro.store.cli import main as store_main
from repro.store.provenance import stamp_payload

from .conftest import raw_sql

pytestmark = pytest.mark.store


def populated(store_path, rows=3):
    with ResultStore(store_path) as st:
        st.put_many("admit", {f"k{i}": {"ok": i} for i in range(rows)})
    return store_path


class TestStats:
    def test_human_output(self, store_path, capsys):
        assert store_main(["stats", populated(store_path)]) == 0
        out = capsys.readouterr().out
        assert "3 entries" in out and "admit: 3" in out

    def test_json_output(self, store_path, capsys):
        assert store_main(["stats", populated(store_path), "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["entries"] == 3
        assert stats["by_namespace"] == {"admit": 3}


class TestVerify:
    def test_clean_store_exits_zero(self, store_path, capsys):
        assert store_main(["verify", populated(store_path)]) == 0
        assert "0 corrupt row(s)" in capsys.readouterr().out

    def test_corrupt_row_is_flagged_without_crashing(self, store_path, capsys):
        populated(store_path)
        raw_sql(
            store_path,
            "UPDATE entries SET payload = '\"forged\"' WHERE key = 'k1'",
        )
        assert store_main(["verify", store_path]) == 1
        out = capsys.readouterr().out
        assert "CORRUPT row dropped" in out and "k1" in out
        # the store was repaired, so a second verify is clean
        assert store_main(["verify", store_path]) == 0

    def test_garbage_file_is_quarantined_and_flagged(self, store_path, capsys):
        with open(store_path, "wb") as fh:
            fh.write(b"not sqlite")
        assert store_main(["verify", store_path]) == 1
        assert "quarantined" in capsys.readouterr().out

    def test_artifact_mismatch_is_flagged(self, tmp_path, capsys):
        bad = stamp_payload({"config": {"seed": 1}, "kind": "x"})
        bad["config"]["seed"] = 2  # tamper after stamping
        (tmp_path / "bad.json").write_text(json.dumps(bad))
        assert store_main(["verify", "--artifacts", str(tmp_path)]) == 1
        assert "MISMATCH" in capsys.readouterr().out

    def test_drift_is_a_warning_unless_strict(self, tmp_path, capsys):
        drifted = stamp_payload({"config": {"seed": 1}, "kind": "x"})
        drifted["provenance"]["code_version"] = "src-feedfeedfeedfeedfeed"
        (tmp_path / "old.json").write_text(json.dumps(drifted))
        assert store_main(["verify", "--artifacts", str(tmp_path)]) == 0
        assert "DRIFT" in capsys.readouterr().out
        assert store_main(
            ["verify", "--artifacts", str(tmp_path), "--strict"]
        ) == 1

    def test_verify_needs_a_target(self, capsys):
        assert store_main(["verify"]) == 2
        assert "error" in capsys.readouterr().err


class TestGC:
    def test_capacity_gc(self, store_path, capsys):
        populated(store_path, rows=5)
        assert store_main(["gc", store_path, "--max-entries", "2"]) == 0
        assert "2 entries remain" in capsys.readouterr().out


class TestExportImport:
    def test_round_trip_via_files(self, store_path, tmp_path, capsys):
        populated(store_path)
        dump = str(tmp_path / "dump.jsonl")
        assert store_main(["export", store_path, "-o", dump]) == 0
        target = str(tmp_path / "copy.db")
        assert store_main(["import", target, "-i", dump]) == 0
        assert "imported 3 rows" in capsys.readouterr().out
        with ResultStore(target) as st:
            assert st.get("admit", "k1") == (True, {"ok": 1})

    def test_export_to_stdout(self, store_path, capsys):
        populated(store_path, rows=1)
        assert store_main(["export", store_path]) == 0
        line = json.loads(capsys.readouterr().out.strip())
        assert line["namespace"] == "admit"

    def test_missing_input_file_is_a_usage_error(self, store_path, capsys):
        assert store_main(
            ["import", store_path, "-i", "/no/such/file.jsonl"]
        ) == 2
        assert "error" in capsys.readouterr().err


class TestTopLevelForwarding:
    def test_repro_cli_forwards_to_store(self, store_path, capsys):
        from repro.cli import main as repro_main

        populated(store_path)
        assert repro_main(["store", "stats", store_path]) == 0
        assert "3 entries" in capsys.readouterr().out
