"""Crash consistency: SIGKILL a writer mid-transaction, reopen, no damage.

WAL mode's contract is that a killed writer loses at most its uncommitted
transaction; everything previously committed must read back intact, with
no quarantine and no corrupt rows.  This is the property the service's
``--store`` flag and the sweep checkpoints rely on.
"""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.store.backend import ResultStore

pytestmark = pytest.mark.store

# The victim commits one durable batch, reports, then writes forever in
# small transactions until it is killed from outside.
WRITER_SCRIPT = """
import sys
from repro.store.backend import ResultStore

store = ResultStore(sys.argv[1])
store.put_many("committed", {f"k{i}": [i, i * i] for i in range(50)})
print("COMMITTED", flush=True)
batch = 0
while True:
    store.put_many(
        "churn",
        {f"b{batch}:{j}": list(range(40)) for j in range(50)},
    )
    batch += 1
"""


def spawn_writer(store_path):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    return subprocess.Popen(
        [sys.executable, "-c", WRITER_SCRIPT, store_path],
        stdout=subprocess.PIPE,
        env=env,
    )


class TestSigkillMidTransaction:
    def test_committed_rows_survive_a_kill(self, store_path):
        proc = spawn_writer(store_path)
        try:
            assert proc.stdout.readline().strip() == b"COMMITTED"
            time.sleep(0.15)  # let it get deep into churn transactions
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=10)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
        assert proc.returncode == -signal.SIGKILL

        with ResultStore(store_path) as st:
            # the file opened cleanly: quick_check passed, no quarantine
            assert st.quarantined_files == 0
            # the committed batch reads back bit-exact
            assert st.get_namespace("committed") == {
                f"k{i}": [i, i * i] for i in range(50)
            }
            # nothing anywhere fails its checksum — partial transactions
            # were rolled back wholesale, not half-applied
            assert st.verify() == []
            # and the store is immediately writable again
            st.put("after", "k", "alive")
            assert st.get("after", "k") == (True, "alive")

    def test_repeated_kills(self, store_path):
        # survive several kill/reopen cycles against the same file
        for _ in range(2):
            proc = spawn_writer(store_path)
            try:
                assert proc.stdout.readline().strip() == b"COMMITTED"
                proc.send_signal(signal.SIGKILL)
                proc.wait(timeout=10)
            finally:
                if proc.poll() is None:
                    proc.kill()
                    proc.wait(timeout=10)
            with ResultStore(store_path) as st:
                assert st.quarantined_files == 0
                assert len(st.get_namespace("committed")) == 50
                assert st.verify() == []
