"""Provenance stamps: artifacts are self-describing and drift is visible."""

import json

import pytest

from repro.perf.telemetry import write_bench_json
from repro.store.provenance import (
    config_hash,
    provenance_record,
    source_code_version,
    stamp_payload,
    verify_artifact,
    verify_artifacts_dir,
)

pytestmark = pytest.mark.store


def write_artifact(path, payload):
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh)


@pytest.fixture
def stamped(tmp_path):
    """A freshly stamped artifact on disk, plus its parsed payload."""
    payload = stamp_payload({
        "kind": "test_artifact",
        "config": {"seed": 42, "samples": 10},
        "result": [1, 2, 3],
    })
    path = str(tmp_path / "artifact.json")
    write_artifact(path, payload)
    return path, payload


class TestStamp:
    def test_stamp_contents(self, stamped):
        _, payload = stamped
        stamp = payload["provenance"]
        assert stamp["format"] == "repro-provenance-v1"
        assert stamp["code_version"] == source_code_version()
        assert stamp["seed"] == 42  # lifted from the config block
        assert stamp["config_hash"] == config_hash(payload["config"])
        assert "rta_calls" in stamp["counters"]

    def test_stamp_is_idempotent(self):
        payload = stamp_payload({"config": {"seed": 1}})
        original = payload["provenance"]
        assert stamp_payload(payload)["provenance"] is original

    def test_config_hash_is_order_insensitive(self):
        assert config_hash({"a": 1, "b": 2}) == config_hash({"b": 2, "a": 1})
        assert config_hash({"a": 1}) != config_hash({"a": 2})

    def test_source_code_version_is_stable(self):
        assert source_code_version() == source_code_version()
        assert source_code_version().startswith("src-")

    def test_record_without_config(self):
        record = provenance_record(seed=None, config=None)
        assert record["config_hash"] == config_hash(None)

    def test_write_bench_json_stamps_automatically(self, tmp_path):
        path = str(tmp_path / "bench.json")
        write_bench_json(path, {"config": {"seed": 3}, "result": 1})
        assert verify_artifact(path)[0] == "ok"


class TestVerify:
    def test_fresh_stamp_is_ok(self, stamped):
        path, _ = stamped
        assert verify_artifact(path) == ("ok", [])

    def test_tampered_config_is_a_mismatch(self, stamped):
        path, payload = stamped
        payload["config"]["samples"] = 99  # edit after stamping
        write_artifact(path, payload)
        status, problems = verify_artifact(path)
        assert status == "mismatch"
        assert any("config_hash" in p for p in problems)

    def test_code_drift_is_reported(self, stamped):
        path, payload = stamped
        payload["provenance"]["code_version"] = "src-0000000000000000dead"
        write_artifact(path, payload)
        status, problems = verify_artifact(path)
        assert status == "drift"
        assert any("rerun" in p for p in problems)

    def test_foreign_schema_version_is_a_mismatch(self, stamped):
        path, payload = stamped
        payload["provenance"]["payload_schema_version"] = 999
        write_artifact(path, payload)
        assert verify_artifact(path)[0] == "mismatch"

    def test_unknown_stamp_format_is_a_mismatch(self, stamped):
        path, payload = stamped
        payload["provenance"] = {"format": "who-knows"}
        write_artifact(path, payload)
        assert verify_artifact(path)[0] == "mismatch"

    def test_unstamped_and_unreadable_do_not_raise(self, tmp_path):
        unstamped = tmp_path / "plain.json"
        unstamped.write_text('{"just": "data"}')
        garbage = tmp_path / "broken.json"
        garbage.write_text("{not json")
        assert verify_artifact(str(unstamped))[0] == "unstamped"
        assert verify_artifact(str(garbage))[0] == "unreadable"

    def test_directory_grouping(self, tmp_path):
        write_artifact(
            tmp_path / "good.json", stamp_payload({"config": {"seed": 1}})
        )
        bad = stamp_payload({"config": {"seed": 2}})
        bad["config"]["seed"] = 3
        write_artifact(tmp_path / "bad.json", bad)
        (tmp_path / "notes.txt").write_text("ignored: not .json")
        grouped = verify_artifacts_dir(str(tmp_path))
        assert [name for name, _ in grouped["ok"]] == ["good.json"]
        assert [name for name, _ in grouped["mismatch"]] == ["bad.json"]


class TestBoundFiles:
    """Sidecars bind sibling output files by checksum (experiments)."""

    @pytest.fixture
    def sidecar(self, tmp_path):
        from repro.store.provenance import file_sha256

        output = tmp_path / "e99.txt"
        output.write_text("experiment output\n")
        payload = stamp_payload({
            "kind": "experiment_report",
            "config": {
                "seed": 0,
                "files": {"e99.txt": file_sha256(str(output))},
            },
        })
        path = str(tmp_path / "e99_provenance.json")
        write_artifact(path, payload)
        return path, output

    def test_intact_files_are_ok(self, sidecar):
        path, _ = sidecar
        assert verify_artifact(path) == ("ok", [])

    def test_edited_output_is_a_mismatch(self, sidecar):
        path, output = sidecar
        output.write_text("experiment output, doctored\n")
        status, problems = verify_artifact(path)
        assert status == "mismatch"
        assert any("has changed" in p for p in problems)

    def test_missing_output_is_a_mismatch(self, sidecar):
        path, output = sidecar
        output.unlink()
        status, problems = verify_artifact(path)
        assert status == "mismatch"
        assert any("missing" in p for p in problems)
