"""TieredCache: promotion, write-through, restart warmth, counter mirroring."""

import pytest

from repro.perf.telemetry import COUNTERS
from repro.store.backend import ResultStore
from repro.store.tiered import TieredCache

pytestmark = pytest.mark.store


class TestTwoTierLookup:
    def test_miss_put_hit(self, store):
        cache = TieredCache(8, store)
        assert cache.get("k") == (False, None)
        cache.put("k", {"v": 1})
        assert cache.get("k") == (True, {"v": 1})
        assert cache.hits == 1 and cache.misses == 1
        assert cache.store_hits == 0  # answered by the memory tier

    def test_durable_hit_promotes_into_memory(self, store):
        store.put("service", "k", {"v": 1})
        cache = TieredCache(8, store)
        assert cache.get("k") == (True, {"v": 1})
        assert cache.store_hits == 1
        assert len(cache.memory) == 1  # promoted
        cache.get("k")
        assert cache.store_hits == 1  # second hit came from memory

    def test_restart_is_warm(self, store_path):
        # "restart" = a brand-new TieredCache over the same store file,
        # exactly what AdmissionService builds on process start
        with ResultStore(store_path) as st:
            TieredCache(8, st).put("k", [1, 2, 3])
        with ResultStore(store_path) as st:
            reborn = TieredCache(8, st)
            assert reborn.get("k") == (True, [1, 2, 3])
            assert reborn.store_hits == 1

    def test_write_through_keeps_canonical_value(self, store):
        store.put("service", "k", {"first": True})
        cache = TieredCache(8, store)
        cache.put("k", {"second": True})  # loses the insert-or-get race
        # both tiers now serve the first writer's bytes
        assert cache.memory.get("k") == (True, {"first": True})
        assert store.get("service", "k") == (True, {"first": True})

    def test_clear_drops_memory_only(self, store):
        cache = TieredCache(8, store)
        cache.put("k", 1)
        cache.clear()
        assert len(cache.memory) == 0
        assert cache.get("k") == (True, 1)  # durable tier still answers
        assert cache.store_hits == 1


class TestCounterMirroring:
    def test_each_outcome_counted_exactly_once(self, store):
        cache = TieredCache(8, store)
        store.put("service", "durable", 1)
        before = COUNTERS.snapshot()
        cache.get("absent")      # combined miss
        cache.get("durable")     # store answers -> combined hit
        cache.get("durable")     # memory answers -> combined hit
        delta = COUNTERS.delta_since(before)
        assert delta["svc_cache_hits"] == 2
        assert delta["svc_cache_misses"] == 1

    def test_memory_tier_does_not_double_count(self, store):
        # the front LRU runs unmirrored; only TieredCache touches the
        # svc_* counters, so one request is one counter event
        cache = TieredCache(8, store)
        assert cache.memory.mirror_counters is False


class TestStats:
    def test_stats_exposes_both_tiers(self, store):
        cache = TieredCache(4, store)
        cache.put("k", 1)
        cache.get("k")
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 0
        assert stats["tiers"]["memory"]["size"] == 1
        assert stats["tiers"]["store"]["entries"] == 1
        assert stats["tiers"]["store"]["hits"] == 0

    def test_hit_rate(self, store):
        cache = TieredCache(4, store)
        assert cache.hit_rate == 0.0
        cache.put("k", 1)
        cache.get("k")
        cache.get("absent")
        assert cache.hit_rate == pytest.approx(0.5)
