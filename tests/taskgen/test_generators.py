"""Tests for TaskSetGenerator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bounds import harmonic_chain_count, light_task_threshold
from repro.taskgen.generators import TaskSetGenerator, make_rng


class TestMakeRng:
    def test_from_int(self):
        assert isinstance(make_rng(3), np.random.Generator)

    def test_passthrough(self):
        rng = np.random.default_rng(0)
        assert make_rng(rng) is rng

    def test_none(self):
        assert isinstance(make_rng(None), np.random.Generator)


class TestConfigValidation:
    def test_bad_n(self):
        with pytest.raises(ValueError):
            TaskSetGenerator(n=0)

    def test_bad_models(self):
        with pytest.raises(ValueError):
            TaskSetGenerator(util_model="magic")
        with pytest.raises(ValueError):
            TaskSetGenerator(period_model="magic")

    def test_bad_cap(self):
        with pytest.raises(ValueError):
            TaskSetGenerator(max_util=1.5)


class TestGeneration:
    def test_requested_utilization_hit(self):
        gen = TaskSetGenerator(n=10)
        ts = gen.generate(u_norm=0.8, processors=4, seed=0)
        assert ts.normalized_utilization(4) == pytest.approx(0.8)
        assert len(ts) == 10

    def test_light_factory(self):
        gen = TaskSetGenerator(n=12).light()
        ts = gen.generate(u_norm=0.9, processors=4, seed=0)
        assert ts.max_utilization <= light_task_threshold(12) + 1e-9

    def test_with_cap(self):
        gen = TaskSetGenerator(n=10).with_cap(0.3)
        ts = gen.generate(u_norm=0.6, processors=4, seed=0)
        assert ts.max_utilization <= 0.3 + 1e-9

    def test_harmonic_period_model(self):
        gen = TaskSetGenerator(n=8, period_model="harmonic")
        ts = gen.generate(u_norm=0.5, processors=2, seed=0)
        assert ts.is_harmonic()

    def test_kchain_period_model(self):
        gen = TaskSetGenerator(n=9, period_model="kchain", k=3)
        ts = gen.generate(u_norm=0.5, processors=2, seed=0)
        assert harmonic_chain_count([t.period for t in ts]) == 3

    def test_randfixedsum_model(self):
        gen = TaskSetGenerator(n=10, util_model="randfixedsum").with_cap(0.4)
        ts = gen.generate(u_norm=0.9, processors=4, seed=0)
        assert ts.normalized_utilization(4) == pytest.approx(0.9)
        assert ts.max_utilization <= 0.4 + 1e-9

    def test_uunifast_falls_back_when_cap_tight(self):
        """Tight cap regimes silently switch to RandFixedSum."""
        gen = TaskSetGenerator(n=12, util_model="uunifast").with_cap(0.35)
        ts = gen.generate(u_norm=1.0, processors=4, seed=0)  # 4.0/4.2 of max
        assert ts.normalized_utilization(4) == pytest.approx(1.0)

    def test_deterministic_per_seed(self):
        gen = TaskSetGenerator(n=6)
        a = gen.generate(u_norm=0.5, processors=2, seed=9)
        b = gen.generate(u_norm=0.5, processors=2, seed=9)
        assert a == b

    def test_different_seeds_differ(self):
        gen = TaskSetGenerator(n=6)
        a = gen.generate(u_norm=0.5, processors=2, seed=1)
        b = gen.generate(u_norm=0.5, processors=2, seed=2)
        assert a != b


class TestBatchAndStream:
    def test_batch_count(self):
        gen = TaskSetGenerator(n=5)
        sets = gen.batch(u_norm=0.5, processors=2, count=7, seed=0)
        assert len(sets) == 7
        assert len({s for s in sets}) > 1  # independent draws

    def test_stream_yields(self):
        gen = TaskSetGenerator(n=5)
        it = gen.stream(u_norm=0.5, processors=2, seed=0)
        first, second = next(it), next(it)
        assert first != second

    @given(st.integers(0, 1_000), st.floats(min_value=0.2, max_value=1.0))
    @settings(max_examples=30, deadline=None)
    def test_generated_sets_always_valid(self, seed, u_norm):
        gen = TaskSetGenerator(n=8)
        ts = gen.generate(u_norm=u_norm, processors=2, seed=seed)
        assert len(ts) == 8
        assert ts.normalized_utilization(2) == pytest.approx(u_norm, rel=1e-6)
        assert all(0 < t.utilization <= 1 for t in ts)
