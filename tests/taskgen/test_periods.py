"""Tests for the period generators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bounds import harmonic_chain_count
from repro.taskgen.periods import (
    discrete_periods,
    harmonic_periods,
    k_chain_periods,
    loguniform_periods,
    uniform_periods,
)


class TestContinuousPeriods:
    def test_loguniform_range(self, rng):
        p = loguniform_periods(200, rng, tmin=10, tmax=1000)
        assert p.min() >= 10 and p.max() <= 1000

    def test_loguniform_density_per_decade(self):
        """Log-uniform: roughly equal mass in [10,100) and [100,1000]."""
        rng = np.random.default_rng(5)
        p = loguniform_periods(20_000, rng, tmin=10, tmax=1000)
        low = np.sum(p < 100) / p.size
        assert low == pytest.approx(0.5, abs=0.02)

    def test_uniform_range(self, rng):
        p = uniform_periods(100, rng, tmin=5, tmax=50)
        assert p.min() >= 5 and p.max() <= 50

    def test_bad_range_rejected(self, rng):
        with pytest.raises(ValueError):
            loguniform_periods(5, rng, tmin=100, tmax=10)
        with pytest.raises(ValueError):
            uniform_periods(5, rng, tmin=0, tmax=10)


class TestDiscretePeriods:
    def test_values_from_menu(self, rng):
        menu = (10.0, 20.0, 40.0)
        p = discrete_periods(50, rng, menu=menu)
        assert set(np.unique(p)).issubset(set(menu))

    def test_empty_menu_rejected(self, rng):
        with pytest.raises(ValueError):
            discrete_periods(5, rng, menu=())


class TestHarmonicPeriods:
    @given(st.integers(0, 10_000), st.integers(min_value=1, max_value=20))
    @settings(max_examples=40, deadline=None)
    def test_always_single_chain(self, seed, n):
        p = harmonic_periods(n, np.random.default_rng(seed))
        assert harmonic_chain_count(p) == 1

    def test_pairwise_divisibility(self, rng):
        p = np.sort(harmonic_periods(12, rng))
        for a, b in zip(p, p[1:]):
            ratio = b / a
            assert abs(ratio - round(ratio)) < 1e-9

    def test_ratio_cap_respected(self, rng):
        p = harmonic_periods(30, rng, base=10.0, max_ratio=16.0)
        assert p.max() / p.min() <= 16.0 + 1e-9

    def test_bad_args_rejected(self, rng):
        with pytest.raises(ValueError):
            harmonic_periods(5, rng, base=0.0)
        with pytest.raises(ValueError):
            harmonic_periods(5, rng, max_factor=0)


class TestKChainPeriods:
    @given(st.integers(1, 5), st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_exact_chain_count(self, k, seed):
        p = k_chain_periods(k + 5, k, np.random.default_rng(seed))
        assert harmonic_chain_count(p) == k

    def test_sizes_balanced(self, rng):
        p = k_chain_periods(10, 2, rng)
        assert p.size == 10

    def test_k_exceeding_n_rejected(self, rng):
        with pytest.raises(ValueError):
            k_chain_periods(2, 3, rng)

    def test_k_zero_rejected(self, rng):
        with pytest.raises(ValueError):
            k_chain_periods(5, 0, rng)

    def test_large_k_unsupported(self, rng):
        with pytest.raises(ValueError):
            k_chain_periods(30, 20, rng)
