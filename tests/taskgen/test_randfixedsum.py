"""Tests for the RandFixedSum port."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.taskgen.randfixedsum import randfixedsum, randfixedsum_utilizations


class TestRandFixedSum:
    def test_shape_and_sum(self, rng):
        x = randfixedsum(6, 2.5, rng, m=7)
        assert x.shape == (7, 6)
        assert x.sum(axis=1) == pytest.approx([2.5] * 7)

    def test_unit_cube_bounds(self, rng):
        x = randfixedsum(8, 5.5, rng, m=20)
        assert x.min() >= -1e-12
        assert x.max() <= 1.0 + 1e-12

    def test_single_component(self, rng):
        assert randfixedsum(1, 0.4, rng)[0] == pytest.approx([0.4])

    def test_extreme_sums(self, rng):
        assert randfixedsum(4, 0.0, rng)[0] == pytest.approx([0, 0, 0, 0])
        assert randfixedsum(4, 4.0, rng)[0] == pytest.approx([1, 1, 1, 1])

    def test_rejects_out_of_range_sum(self, rng):
        with pytest.raises(ValueError):
            randfixedsum(3, 3.5, rng)
        with pytest.raises(ValueError):
            randfixedsum(3, -0.1, rng)

    def test_rejects_zero_n(self, rng):
        with pytest.raises(ValueError):
            randfixedsum(0, 0.0, rng)

    @given(
        st.integers(min_value=2, max_value=15),
        st.floats(min_value=0.05, max_value=0.95),
        st.integers(0, 10_000),
    )
    @settings(max_examples=50, deadline=None)
    def test_sum_and_bounds_property(self, n, frac, seed):
        s = frac * n
        x = randfixedsum(n, s, np.random.default_rng(seed), m=2)
        assert x.sum(axis=1) == pytest.approx([s, s], rel=1e-9)
        assert x.min() >= -1e-9
        assert x.max() <= 1 + 1e-9

    def test_components_exchangeable(self):
        """After the per-sample shuffle, component means are equal."""
        rng = np.random.default_rng(11)
        x = randfixedsum(4, 1.8, rng, m=4000)
        means = x.mean(axis=0)
        assert means == pytest.approx([0.45] * 4, abs=0.02)

    def test_tight_sum_no_rejection(self, rng):
        """The regime where UUniFast-discard degenerates works instantly."""
        x = randfixedsum(12, 11.0, rng, m=5)
        assert x.sum(axis=1) == pytest.approx([11.0] * 5)


class TestRandFixedSumUtilizations:
    def test_cap_respected(self, rng):
        u = randfixedsum_utilizations(10, 3.8, rng, max_util=0.41)
        assert u.max() <= 0.41 + 1e-9
        assert u.sum() == pytest.approx(3.8)

    def test_infeasible_rejected(self, rng):
        with pytest.raises(ValueError):
            randfixedsum_utilizations(4, 3.0, rng, max_util=0.5)

    def test_bad_cap_rejected(self, rng):
        with pytest.raises(ValueError):
            randfixedsum_utilizations(4, 1.0, rng, max_util=0.0)
