"""Statistical properties of the workload generators.

Evaluation conclusions are only as good as the generators: biased samples
could fake an acceptance-ratio advantage.  These tests check distributional
properties with scipy (KS tests, moment checks) at sample sizes where the
statistics are decisive but cheap.
"""

import numpy as np
import pytest
from scipy import stats

from repro.taskgen.periods import loguniform_periods, uniform_periods
from repro.taskgen.randfixedsum import randfixedsum
from repro.taskgen.uunifast import uunifast


SEED = 20260706


class TestUUniFastDistribution:
    def test_marginal_matches_beta(self):
        """For UUniFast with total s, each (exchangeable) component's
        marginal is s * Beta(1, n-1); check via KS against that CDF."""
        n, total, samples = 5, 2.0, 3000
        rng = np.random.default_rng(SEED)
        draws = np.array([uunifast(n, total, rng) for _ in range(samples)])
        # components are exchangeable only in distribution; pool a fixed
        # column to avoid selection effects
        column = draws[:, 2] / total
        ks = stats.kstest(column, stats.beta(1, n - 1).cdf)
        assert ks.pvalue > 1e-3, ks

    def test_component_means_equal(self):
        n, total = 6, 3.0
        rng = np.random.default_rng(SEED)
        draws = np.array([uunifast(n, total, rng) for _ in range(4000)])
        means = draws.mean(axis=0)
        assert np.allclose(means, total / n, atol=0.03)


class TestRandFixedSumDistribution:
    def test_marginals_match_uunifast_in_unconstrained_regime(self):
        """With the cap far from binding, RandFixedSum samples the same
        simplex as UUniFast; compare a marginal via two-sample KS."""
        n, total, samples = 5, 1.5, 2500
        rng = np.random.default_rng(SEED)
        rfs = randfixedsum(n, total, rng, m=samples)[:, 1]
        uuf = np.array([uunifast(n, total, rng)[1] for _ in range(samples)])
        ks = stats.ks_2samp(rfs, uuf)
        assert ks.pvalue > 1e-3, ks

    def test_variance_shrinks_when_cap_binds(self):
        """Near the n*cap ceiling every component is forced toward the
        cap: variance must be far below the unconstrained regime's."""
        n, samples = 6, 1500
        rng = np.random.default_rng(SEED)
        loose = randfixedsum(n, 1.0, rng, m=samples)
        tight = randfixedsum(n, 5.7, rng, m=samples)  # near n = 6
        assert tight.std() < loose.std()


class TestPeriodDistributions:
    def test_loguniform_ks(self):
        rng = np.random.default_rng(SEED)
        p = loguniform_periods(4000, rng, tmin=10, tmax=1000)
        logs = np.log(p)
        ks = stats.kstest(
            logs, stats.uniform(np.log(10), np.log(1000) - np.log(10)).cdf
        )
        assert ks.pvalue > 1e-3, ks

    def test_uniform_ks(self):
        rng = np.random.default_rng(SEED)
        p = uniform_periods(4000, rng, tmin=10, tmax=1000)
        ks = stats.kstest(p, stats.uniform(10, 990).cdf)
        assert ks.pvalue > 1e-3, ks

    def test_loguniform_vs_uniform_medians_differ(self):
        rng = np.random.default_rng(SEED)
        lu = np.median(loguniform_periods(4000, rng, tmin=10, tmax=1000))
        un = np.median(uniform_periods(4000, rng, tmin=10, tmax=1000))
        assert lu == pytest.approx(100.0, rel=0.15)   # sqrt(10*1000)
        assert un == pytest.approx(505.0, rel=0.15)
