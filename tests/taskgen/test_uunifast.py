"""Tests for UUniFast and variants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.taskgen.uunifast import (
    uniform_utilizations,
    uunifast,
    uunifast_discard,
)


class TestUUniFast:
    def test_sum_exact(self, rng):
        u = uunifast(10, 3.5, rng)
        assert u.sum() == pytest.approx(3.5)

    def test_all_positive(self, rng):
        u = uunifast(20, 2.0, rng)
        assert (u > 0).all()

    def test_single_task(self, rng):
        assert uunifast(1, 0.7, rng) == pytest.approx([0.7])

    def test_rejects_bad_args(self, rng):
        with pytest.raises(ValueError):
            uunifast(0, 1.0, rng)
        with pytest.raises(ValueError):
            uunifast(5, 0.0, rng)

    def test_deterministic_for_seed(self):
        a = uunifast(8, 2.0, np.random.default_rng(42))
        b = uunifast(8, 2.0, np.random.default_rng(42))
        assert np.allclose(a, b)

    @given(
        st.integers(min_value=2, max_value=30),
        st.floats(min_value=0.1, max_value=8.0),
        st.integers(0, 10_000),
    )
    @settings(max_examples=50)
    def test_sum_property(self, n, total, seed):
        u = uunifast(n, total, np.random.default_rng(seed))
        assert u.sum() == pytest.approx(total, rel=1e-9)
        assert u.min() >= 0

    def test_distribution_mean(self):
        """Each component of a uniform simplex sample has mean total/n."""
        rng = np.random.default_rng(7)
        samples = np.array([uunifast(5, 2.0, rng) for _ in range(4000)])
        assert samples.mean(axis=0) == pytest.approx(0.4, abs=0.02)


class TestUUniFastDiscard:
    def test_respects_cap(self, rng):
        u = uunifast_discard(10, 3.0, rng, max_util=0.5)
        assert u.max() <= 0.5 + 1e-9
        assert u.sum() == pytest.approx(3.0)

    def test_respects_floor(self, rng):
        u = uunifast_discard(5, 2.0, rng, max_util=0.9, min_util=0.1)
        assert u.min() >= 0.1 - 1e-9

    def test_infeasible_cap_rejected(self, rng):
        with pytest.raises(ValueError):
            uunifast_discard(4, 3.0, rng, max_util=0.5)

    def test_infeasible_floor_rejected(self, rng):
        with pytest.raises(ValueError):
            uunifast_discard(4, 0.1, rng, min_util=0.2)

    def test_exhaustion_raises(self, rng):
        # Extremely tight cap: total = 0.99 * n * cap is nearly always
        # rejected by plain UUniFast.
        with pytest.raises(RuntimeError):
            uunifast_discard(12, 12 * 0.3 * 0.99, rng,
                             max_util=0.3, max_tries=5)


class TestUniformUtilizations:
    def test_range(self, rng):
        u = uniform_utilizations(50, rng, low=0.1, high=0.2)
        assert u.min() >= 0.1 and u.max() <= 0.2

    def test_rejects_bad_range(self, rng):
        with pytest.raises(ValueError):
            uniform_utilizations(5, rng, low=0.5, high=0.1)
