"""Tests for the named workload presets."""

import pytest

from repro.core.bounds import harmonic_chain_count
from repro.core.rmts import partition_rmts
from repro.core.rmts_light import is_light_task_set
from repro.sim.engine import simulate_partition
from repro.taskgen.workloads import (
    WORKLOAD_PRESETS,
    build_workload,
    preset_names,
)


class TestPresetCatalogue:
    def test_expected_presets(self):
        assert {"avionics", "automotive", "robotics", "infotainment"} == set(
            preset_names()
        )

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError, match="unknown preset"):
            build_workload("mainframe")

    def test_bad_args_rejected(self):
        with pytest.raises(ValueError):
            build_workload("avionics", u_norm=0.0)
        with pytest.raises(ValueError):
            build_workload("avionics", processors=0)


class TestUtilizationScaling:
    @pytest.mark.parametrize("preset", sorted(WORKLOAD_PRESETS))
    @pytest.mark.parametrize("u_norm", [0.4, 0.7, 0.9])
    def test_target_hit_exactly(self, preset, u_norm):
        ts = build_workload(preset, u_norm=u_norm, processors=4, seed=2)
        assert ts.normalized_utilization(4) == pytest.approx(u_norm)

    def test_infeasible_scaling_rejected(self):
        # infotainment's fat tasks exceed U=1 when pushed too hard
        with pytest.raises(ValueError, match=">= 1"):
            build_workload("infotainment", u_norm=0.99, processors=16)


class TestStructuralPromises:
    def test_avionics_is_harmonic(self):
        ts = build_workload("avionics", u_norm=0.9, processors=4, seed=0)
        assert ts.is_harmonic()

    def test_avionics_light_at_design_utilizations(self):
        # the preset's weight spread keeps every task under the light
        # cutoff for design-typical loads (up to ~0.74 on 4 cores)
        ts = build_workload("avionics", u_norm=0.7, processors=4, seed=0)
        assert is_light_task_set(ts)

    def test_robotics_has_two_chains(self):
        ts = build_workload("robotics", u_norm=0.7, processors=4, seed=0)
        assert harmonic_chain_count([t.period for t in ts]) == 2

    def test_automotive_reproducible_per_seed(self):
        a = build_workload("automotive", u_norm=0.6, processors=4, seed=5)
        b = build_workload("automotive", u_norm=0.6, processors=4, seed=5)
        assert a == b

    def test_infotainment_has_heavy_tasks(self):
        ts = build_workload("infotainment", u_norm=0.8, processors=4, seed=0)
        from repro.core.bounds import light_task_threshold

        cutoff = light_task_threshold(len(ts))
        assert any(t.utilization > cutoff for t in ts)

    def test_names_preserved(self):
        ts = build_workload("avionics", u_norm=0.5, processors=2, seed=0)
        assert any(t.name == "nav_filter" for t in ts)


class TestPresetsThroughThePipeline:
    @pytest.mark.parametrize("preset", sorted(WORKLOAD_PRESETS))
    def test_partition_and_simulate(self, preset):
        ts = build_workload(preset, u_norm=0.7, processors=4, seed=3)
        part = partition_rmts(ts, 4, dedicate_over_bound=False)
        assert part.success, preset
        assert part.validate() == []
        sim = simulate_partition(part, horizon=3000.0)
        assert sim.ok, preset
