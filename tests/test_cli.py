"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.cli import load_taskset, main


@pytest.fixture
def taskfile(tmp_path):
    path = tmp_path / "tasks.json"
    path.write_text(json.dumps([[1, 4], [2, 8], [6, 16], [8, 32]]))
    return str(path)


@pytest.fixture
def dict_taskfile(tmp_path):
    path = tmp_path / "tasks.json"
    path.write_text(json.dumps([
        {"cost": 1, "period": 4, "name": "a"},
        {"cost": 2, "period": 8},
    ]))
    return str(path)


class TestLoadTaskset:
    def test_pairs(self, taskfile):
        ts = load_taskset(taskfile)
        assert len(ts) == 4
        assert ts.total_utilization == pytest.approx(1.125)

    def test_dicts(self, dict_taskfile):
        ts = load_taskset(dict_taskfile)
        assert ts[0].name == "a"

    def test_empty_rejected(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text("[]")
        with pytest.raises(ValueError):
            load_taskset(str(path))


class TestBoundsCommand:
    def test_prints_bounds(self, taskfile, capsys):
        assert main(["bounds", taskfile]) == 0
        out = capsys.readouterr().out
        assert "HC" in out and "harmonic chains K=1" in out

    def test_platform_verdict(self, taskfile, capsys):
        assert main(["bounds", taskfile, "-m", "2"]) == 0
        out = capsys.readouterr().out
        assert "GUARANTEED" in out


class TestPartitionCommand:
    def test_success_exit_zero(self, taskfile, capsys):
        assert main(["partition", taskfile, "-m", "2"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_failure_exit_one(self, taskfile, capsys):
        assert main(["partition", taskfile, "-m", "1"]) == 1
        assert "FAILED" in capsys.readouterr().out

    @pytest.mark.parametrize(
        "algorithm",
        ["rmts", "rmts-star", "rmts-light", "spa1", "spa2", "p-rm", "p-edf"],
    )
    def test_all_algorithms_run(self, taskfile, algorithm):
        assert main(["partition", taskfile, "-m", "2", "-a", algorithm]) in (0, 1)


class TestSimulateCommand:
    def test_clean_simulation(self, taskfile, capsys):
        assert main(["simulate", taskfile, "-m", "2"]) == 0
        assert "0 deadline misses" in capsys.readouterr().out

    def test_gantt_output(self, taskfile, capsys):
        assert main(["simulate", taskfile, "-m", "2", "--gantt"]) == 0
        assert "P0 |" in capsys.readouterr().out

    def test_overhead_can_cause_misses(self, taskfile, capsys):
        code = main(["simulate", taskfile, "-m", "2", "--overhead", "2.0"])
        out = capsys.readouterr().out
        assert (code == 1) == ("MISS" in out)


class TestGenerateCommand:
    def test_writes_file(self, tmp_path, capsys):
        out_path = tmp_path / "gen.json"
        assert main([
            "generate", "--n", "6", "--u-norm", "0.5", "-m", "2",
            "--periods", "harmonic", "--light", "-o", str(out_path),
        ]) == 0
        data = json.loads(out_path.read_text())
        assert len(data) == 6

    def test_prints_without_output(self, capsys):
        assert main(["generate", "--n", "3"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert len(data) == 3

    def test_roundtrip_through_partition(self, tmp_path):
        out_path = tmp_path / "gen.json"
        main(["generate", "--n", "8", "--u-norm", "0.6", "-m", "2",
              "-o", str(out_path)])
        assert main(["partition", str(out_path), "-m", "2"]) == 0


class TestErrors:
    def test_missing_file(self, capsys):
        assert main(["bounds", "/nonexistent.json"]) == 2
        assert "error" in capsys.readouterr().err


class TestMalformedTaskFiles:
    """Malformed task JSON exits 2 with a one-line structured message —
    the same validation path the admission service uses (PR-2)."""

    @pytest.mark.parametrize("rows", [
        [[-1, 4]],                        # negative cost
        [[0, 4]],                         # zero cost
        [[5, 4]],                         # cost > period
        [[1, "many"]],                    # non-numeric period
        [{"cost": {}, "period": 4}],      # non-numeric cost (TypeError bait)
        [{"period": 4}],                  # missing cost
        [[1, 2, 3]],                      # wrong arity
        [],                               # empty list
        {"cost": 1, "period": 4},         # not a list
    ])
    def test_exit_2_one_line_message(self, tmp_path, capsys, rows):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(rows))
        assert main(["partition", str(path), "-m", "2"]) == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1          # exactly one line
        assert err.startswith("error: ")
        assert "Traceback" not in err

    def test_invalid_json_text(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        assert main(["partition", str(path), "-m", "2"]) == 2
        err = capsys.readouterr().err
        assert "invalid JSON" in err and err.count("\n") == 1

    def test_message_names_offending_field(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps([[1, 4], [-2, 8]]))
        assert main(["bounds", str(path)]) == 2
        assert "[1].cost" in capsys.readouterr().err

    def test_multiple_errors_summarized(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps([[-1, 4], [9, 4], [1, "x"]]))
        assert main(["partition", str(path), "-m", "2"]) == 2
        assert "more error" in capsys.readouterr().err


class TestServeCommand:
    def test_serve_registered_with_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["serve", "--port", "0"])
        assert args.func.__name__ == "cmd_serve"
        assert args.queue_limit == 64
        assert args.analysis_timeout == pytest.approx(5.0)
        assert args.cache_size == 1024
