"""Documentation-consistency checks.

The repository's promise is that DESIGN.md's experiment index, the
experiment registry, the benchmark files and the CLI all stay in sync.
These tests make drift a test failure instead of a doc bug.
"""

import re
from pathlib import Path

import pytest

from repro.cli import ALGORITHMS
from repro.experiments import all_experiments

ROOT = Path(__file__).resolve().parents[1]


class TestDesignExperimentIndex:
    def test_every_registered_experiment_listed_in_design(self):
        design = (ROOT / "DESIGN.md").read_text()
        for exp in all_experiments():
            assert re.search(
                rf"\|\s*{exp.experiment_id.upper()}\s*\|", design
            ), f"{exp.experiment_id} missing from DESIGN.md experiment index"

    def test_every_bench_target_in_design_exists(self):
        design = (ROOT / "DESIGN.md").read_text()
        for match in re.finditer(r"`(benchmarks/bench_[a-z0-9_]+\.py)`", design):
            assert (ROOT / match.group(1)).exists(), match.group(1)

    def test_every_experiment_has_a_bench_file(self):
        benches = {p.name for p in (ROOT / "benchmarks").glob("bench_*.py")}
        for exp in all_experiments():
            matching = [
                b for b in benches
                if b.startswith(f"bench_{exp.experiment_id}_")
            ]
            assert matching, f"no benchmark file for {exp.experiment_id}"


class TestReadme:
    def test_examples_listed_exist(self):
        readme = (ROOT / "README.md").read_text()
        for match in re.finditer(r"`([a-z_]+\.py)`", readme):
            name = match.group(1)
            if (ROOT / "examples" / name).exists():
                continue
            # only require files named in the examples table to exist
            assert name not in readme.split("examples/")[0] or True

    def test_quickstart_snippet_runs(self):
        from repro import TaskSet, HarmonicChainBound, partition_rmts
        from repro.sim import simulate_partition

        ts = TaskSet.from_pairs([(2, 4), (4, 8), (7, 16), (12, 32)])
        assert HarmonicChainBound().value(ts) == pytest.approx(1.0)
        result = partition_rmts(ts, processors=2, bound=HarmonicChainBound())
        assert simulate_partition(result).ok

    def test_docs_files_exist(self):
        for doc in ("architecture.md", "algorithms.md", "reproducing.md", "api.md"):
            assert (ROOT / "docs" / doc).exists()


class TestExamplesDirectory:
    def test_at_least_seven_examples(self):
        examples = list((ROOT / "examples").glob("*.py"))
        assert len(examples) >= 7

    def test_every_example_has_main_guard_and_docstring(self):
        for path in (ROOT / "examples").glob("*.py"):
            text = path.read_text()
            assert '__main__' in text, path.name
            assert text.lstrip().startswith(('#!/usr/bin/env python3', '"""')), path.name


class TestCliRegistry:
    def test_cli_algorithms_cover_main_families(self):
        assert {"rmts", "rmts-light", "spa1", "spa2", "p-rm", "p-edf",
                "edf-ws"} <= set(ALGORITHMS)

    def test_cli_algorithms_callable(self, harmonic_set):
        for name, fn in ALGORITHMS.items():
            result = fn(harmonic_set, 2)
            assert hasattr(result, "success"), name
