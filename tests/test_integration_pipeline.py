"""End-to-end integration scenarios across the whole library.

Each test tells a complete user story: workload -> bounds -> partitioning
-> validation -> simulation -> sensitivity, exercising the public API the
way the examples do (but assertively).
"""

import pytest

from repro import (
    HarmonicChainBound,
    TaskSet,
    best_bound_value,
    partition_rmts,
    partition_rmts_light,
)
from repro.analysis import (
    breakdown_utilization,
    critical_scaling_factor,
    minimum_processors,
    overhead_tolerance,
    partition_scaling_factor,
)
from repro.core.bounds import harmonize_periods, rmts_bound_cap
from repro.core.serialization import partition_from_dict, partition_to_dict
from repro.sim import simulate_partition
from repro.taskgen import build_workload


class TestAvionicsStory:
    """Size a flight controller: bounds first, then exact, then margins."""

    def test_full_story(self):
        ts = build_workload("avionics", u_norm=0.7, processors=4, seed=0)

        # 1. instant design-time answer from the harmonic 100% bound
        lam = min(best_bound_value(ts), rmts_bound_cap(len(ts)))
        assert best_bound_value(ts) == pytest.approx(1.0)  # harmonic

        # 2. exact sizing: the bound promises ceil(U / lam) cores
        promised = minimum_processors(
            lambda t, m: t.normalized_utilization(m) <= lam, ts
        )
        exact = minimum_processors(
            lambda t, m: partition_rmts_light(t, m).success, ts
        )
        assert exact is not None and exact <= promised

        # 3. the chosen design validates, simulates, and has margin
        part = partition_rmts_light(ts, exact)
        assert part.validate() == []
        assert simulate_partition(part).ok
        assert partition_scaling_factor(part, tolerance=1e-4) >= 1.0 - 1e-6


class TestAutomotiveStory:
    """Non-harmonic industrial workload through RM-TS with pre-assignment."""

    def test_full_story(self):
        ts = build_workload("automotive", u_norm=0.8, processors=4, seed=7)
        part = partition_rmts(ts, 4, dedicate_over_bound=False)
        assert part.success
        assert part.validate() == []
        sim = simulate_partition(part, horizon=5000.0, record_trace=True)
        assert sim.ok
        assert sim.trace.check_all() == []
        # the design survives realistic preemption costs at this load
        tol = overhead_tolerance(part, horizon=5000.0, max_overhead=0.5,
                                 tolerance=5e-3)
        assert tol >= 0.0  # reported, possibly zero at tight packings


class TestHarmonizationStory:
    """Sr specialization turns a mediocre guarantee into 100%."""

    def test_full_story(self):
        periods = [10.0, 10.2, 20.4, 20.5, 40.8, 41.0, 80.0, 81.6]
        from repro.core.task import Task

        ts = TaskSet(Task(cost=0.2 * p, period=p) for p in periods)
        before = best_bound_value(ts)
        h = harmonize_periods(ts)
        after = HarmonicChainBound().value(h)
        assert after == pytest.approx(1.0)
        assert after > before
        part = partition_rmts_light(h, 2)
        assert part.success
        assert simulate_partition(part).ok


class TestBreakdownConsistency:
    def test_breakdown_matches_direct_acceptance(self):
        """The breakdown search and direct acceptance agree at the edge."""
        ts = build_workload("robotics", u_norm=0.5, processors=2, seed=1)
        accept = lambda t, m: partition_rmts(
            t, m, dedicate_over_bound=False
        ).success
        edge = breakdown_utilization(accept, ts, 2, tolerance=1e-3)
        below = ts.scaled_costs(
            (edge - 5e-3) / ts.normalized_utilization(2)
        )
        assert accept(below, 2)


class TestSerializationStory:
    def test_design_artifact_roundtrip(self):
        """Partition, ship as JSON, reload, re-verify, re-simulate."""
        ts = build_workload("infotainment", u_norm=0.7, processors=4, seed=2)
        part = partition_rmts(ts, 4, dedicate_over_bound=False)
        assert part.success
        payload = partition_to_dict(part)
        again = partition_from_dict(payload)
        assert again.validate() == []
        assert simulate_partition(again, horizon=5000.0).ok
