"""The public API surface: imports, exports and the README quickstart."""

import importlib

import pytest

import repro


class TestExports:
    def test_version(self):
        assert repro.__version__

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    @pytest.mark.parametrize(
        "module",
        [
            "repro.core",
            "repro.core.task",
            "repro.core.rta",
            "repro.core.bounds",
            "repro.core.partition",
            "repro.core.maxsplit",
            "repro.core.admission",
            "repro.core.assign",
            "repro.core.rmts",
            "repro.core.rmts_light",
            "repro.core.baselines",
            "repro.sim",
            "repro.taskgen",
            "repro.analysis",
            "repro.experiments",
            "repro.search",
        ],
    )
    def test_submodules_import(self, module):
        mod = importlib.import_module(module)
        if hasattr(mod, "__all__"):
            for name in mod.__all__:
                assert hasattr(mod, name), f"{module}.{name}"


class TestQuickstart:
    def test_readme_quickstart(self):
        """The exact flow shown in the package docstring / README."""
        from repro import TaskSet, partition_rmts, HarmonicChainBound

        ts = TaskSet.from_pairs([(1, 4), (2, 8), (6, 16), (8, 32)])
        result = partition_rmts(ts, processors=2, bound=HarmonicChainBound())
        assert result.success

    def test_full_pipeline(self):
        """generate -> bound -> partition -> simulate, via public names."""
        from repro import best_bound_value, partition_rmts
        from repro.sim import simulate_partition
        from repro.taskgen import TaskSetGenerator

        gen = TaskSetGenerator(n=8, period_model="harmonic", tmin=8.0).light()
        ts = gen.generate(u_norm=0.9, processors=2, seed=0)
        assert best_bound_value(ts) == pytest.approx(1.0)
        part = partition_rmts(ts, 2)
        assert part.success
        assert simulate_partition(part).ok
