"""Unit tests for the shared float-comparison policy."""

import math

import pytest
from hypothesis import given, strategies as st

from repro._util.floats import (
    EPS,
    approx_ge,
    approx_gt,
    approx_le,
    approx_lt,
    is_close,
    is_integer_multiple,
    safe_ceil,
)


class TestIsClose:
    def test_equal_values(self):
        assert is_close(1.0, 1.0)

    def test_within_absolute_tolerance(self):
        assert is_close(0.0, EPS / 2)

    def test_within_relative_tolerance(self):
        assert is_close(1e12, 1e12 * (1 + 1e-10))

    def test_clearly_different(self):
        assert not is_close(1.0, 1.001)

    def test_sign_matters(self):
        assert not is_close(1.0, -1.0)


class TestApproxComparisons:
    def test_le_strict(self):
        assert approx_le(1.0, 2.0)

    def test_le_boundary(self):
        assert approx_le(1.0 + EPS / 2, 1.0)

    def test_le_violated(self):
        assert not approx_le(1.01, 1.0)

    def test_ge_strict(self):
        assert approx_ge(2.0, 1.0)

    def test_ge_boundary(self):
        assert approx_ge(1.0 - EPS / 2, 1.0)

    def test_lt_excludes_boundary(self):
        assert not approx_lt(1.0 - EPS / 2, 1.0)

    def test_lt_holds_when_clearly_less(self):
        assert approx_lt(0.9, 1.0)

    def test_gt_excludes_boundary(self):
        assert not approx_gt(1.0 + EPS / 2, 1.0)

    def test_gt_holds_when_clearly_greater(self):
        assert approx_gt(1.1, 1.0)

    @given(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False))
    def test_le_and_gt_partition_the_line(self, x):
        assert approx_le(x, 0.0) != approx_gt(x, 0.0)


class TestIsIntegerMultiple:
    def test_exact_multiple(self):
        assert is_integer_multiple(4.0, 12.0)

    def test_equal_periods(self):
        assert is_integer_multiple(5.0, 5.0)

    def test_non_multiple(self):
        assert not is_integer_multiple(4.0, 10.0)

    def test_smaller_than_divisor(self):
        assert not is_integer_multiple(10.0, 4.0)

    def test_float_noise_tolerated(self):
        base = 0.1
        assert is_integer_multiple(base, base * 3 * (1 + 1e-9))

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            is_integer_multiple(0.0, 1.0)
        with pytest.raises(ValueError):
            is_integer_multiple(1.0, -1.0)

    @given(
        st.floats(min_value=0.1, max_value=100.0, allow_nan=False),
        st.integers(min_value=1, max_value=50),
    )
    def test_constructed_multiples_always_pass(self, base, k):
        assert is_integer_multiple(base, base * k)


class TestSafeCeil:
    def test_plain_ceiling(self):
        assert safe_ceil(2.3) == 3

    def test_integer_input(self):
        assert safe_ceil(4.0) == 4

    def test_epsilon_above_integer_rounds_down(self):
        assert safe_ceil(3.0 + 1e-12) == 3

    def test_clearly_above_integer_rounds_up(self):
        assert safe_ceil(3.01) == 4

    @given(st.floats(min_value=0.0, max_value=1e6, allow_nan=False))
    def test_never_below_floor(self, x):
        assert safe_ceil(x) >= math.floor(x)
