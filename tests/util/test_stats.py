"""Exact-value tests for the shared statistics helpers.

The Wilson reference numbers are the textbook values for the score
interval (e.g. 8/10 successes at 95% -> [0.4902, 0.9433]); the
bootstrap values pin the seeded resampling path bit-for-bit.
"""

import numpy as np
import pytest

from repro._util.stats import (
    bootstrap_ci,
    wilson_half_width,
    wilson_interval,
    z_score,
)


class TestZScore:
    def test_95_percent(self):
        assert z_score(0.95) == pytest.approx(1.959963984540054, abs=1e-12)

    def test_90_percent(self):
        assert z_score(0.90) == pytest.approx(1.6448536269514722, abs=1e-12)

    @pytest.mark.parametrize("confidence", [0.0, 1.0, -0.1, 1.5])
    def test_rejects_degenerate_confidence(self, confidence):
        with pytest.raises(ValueError):
            z_score(confidence)


class TestWilsonInterval:
    def test_textbook_value(self):
        lo, hi = wilson_interval(8, 10)
        assert lo == pytest.approx(0.4901624715366418, abs=1e-12)
        assert hi == pytest.approx(0.9433178485456248, abs=1e-12)

    def test_zero_successes_never_degenerates(self):
        # Unlike the normal approximation, the score interval keeps a
        # nonzero width at p_hat = 0 — this is what lets the frontier
        # mapper classify levels the algorithm always rejects.
        lo, hi = wilson_interval(0, 20)
        assert lo == 0.0
        assert hi == pytest.approx(0.16112515805281938, abs=1e-12)

    def test_all_successes_never_degenerates(self):
        lo, hi = wilson_interval(20, 20)
        assert lo == pytest.approx(0.8388748419471806, abs=1e-12)
        assert hi == 1.0

    def test_symmetric_at_half(self):
        lo, hi = wilson_interval(5, 10, confidence=0.9)
        assert lo == pytest.approx(0.2692718211382672, abs=1e-12)
        assert hi == pytest.approx(1.0 - lo, abs=1e-12)

    def test_bounds_clamped_to_unit_interval(self):
        lo, hi = wilson_interval(1, 2)
        assert 0.0 <= lo <= hi <= 1.0

    def test_more_trials_shrink_the_interval(self):
        wide = wilson_half_width(8, 10)
        narrow = wilson_half_width(80, 100)
        assert wide == pytest.approx(0.22657768850449153, abs=1e-12)
        assert narrow < wide

    def test_rejects_bad_counts(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 0)
        with pytest.raises(ValueError):
            wilson_interval(11, 10)
        with pytest.raises(ValueError):
            wilson_interval(-1, 10)


class TestBootstrapCI:
    def test_seeded_resampling_is_exact(self):
        lo, hi = bootstrap_ci(
            [0.5, 0.7, 0.9, 0.6, 0.8], seed=7, resamples=500
        )
        assert lo == pytest.approx(0.58, abs=1e-12)
        assert hi == pytest.approx(0.8200000000000001, abs=1e-12)

    def test_deterministic_per_seed(self):
        values = list(np.linspace(0.4, 0.9, 20))
        assert bootstrap_ci(values, seed=3) == bootstrap_ci(values, seed=3)
        assert bootstrap_ci(values, seed=3) != bootstrap_ci(values, seed=4)

    def test_single_value_collapses(self):
        assert bootstrap_ci([0.42], seed=0) == (0.42, 0.42)

    def test_contains_the_sample_mean(self):
        values = [0.2, 0.4, 0.6, 0.8]
        lo, hi = bootstrap_ci(values, seed=1)
        assert lo <= float(np.mean(values)) <= hi

    def test_rejects_empty_input(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])

    def test_rejects_degenerate_confidence(self):
        with pytest.raises(ValueError):
            bootstrap_ci([0.1, 0.2], confidence=1.0)
