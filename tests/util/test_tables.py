"""Unit tests for the experiment table helper."""

import pytest

from repro._util.tables import Table


class TestTableConstruction:
    def test_requires_header(self):
        with pytest.raises(ValueError):
            Table([])

    def test_row_length_checked(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_len_counts_rows(self):
        t = Table(["a"])
        t.add_row([1])
        t.add_row([2])
        assert len(t) == 2


class TestColumnAccess:
    def test_column_by_name(self):
        t = Table(["x", "y"])
        t.add_row([1, 2])
        t.add_row([3, 4])
        assert t.column("y") == [2, 4]

    def test_unknown_column_raises(self):
        t = Table(["x"])
        with pytest.raises(KeyError):
            t.column("nope")


class TestRendering:
    def test_text_contains_all_cells(self):
        t = Table(["name", "value"], title="demo")
        t.add_row(["alpha", 0.5])
        text = t.to_text()
        assert "demo" in text
        assert "alpha" in text
        assert "0.5000" in text

    def test_floats_formatted_to_four_places(self):
        t = Table(["v"])
        t.add_row([1 / 3])
        assert "0.3333" in t.to_text()

    def test_csv_roundtrips_header_and_rows(self):
        t = Table(["a", "b"])
        t.add_row([1, "x"])
        lines = t.to_csv().strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,x"

    def test_write_csv(self, tmp_path):
        t = Table(["a"])
        t.add_row([7])
        path = tmp_path / "out.csv"
        t.write_csv(str(path))
        assert path.read_text().startswith("a")
