"""Unit tests for argument-validation helpers."""

import pytest

from repro._util.validation import (
    check_in_range,
    check_nonnegative,
    check_positive,
    check_probability,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 0.5) == 0.5

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="x"):
            check_positive("x", 0.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive("x", -1)


class TestCheckNonnegative:
    def test_accepts_zero(self):
        assert check_nonnegative("x", 0.0) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_nonnegative("x", -0.1)


class TestCheckProbability:
    def test_accepts_bounds(self):
        assert check_probability("p", 0.0) == 0.0
        assert check_probability("p", 1.0) == 1.0

    def test_rejects_above_one(self):
        with pytest.raises(ValueError):
            check_probability("p", 1.1)


class TestCheckInRange:
    def test_both_bounds(self):
        assert check_in_range("v", 5, 0, 10) == 5

    def test_low_only(self):
        assert check_in_range("v", 5, low=0) == 5

    def test_violates_low(self):
        with pytest.raises(ValueError, match=">= 0"):
            check_in_range("v", -1, low=0)

    def test_violates_high(self):
        with pytest.raises(ValueError, match="<= 10"):
            check_in_range("v", 11, high=10)
